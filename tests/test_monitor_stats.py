"""Tests for the drift statistics (PSI, two-sample KS, fractions)."""

import numpy as np
import pytest

from repro.monitor import fractions, ks_statistic, psi
from repro.monitor.stats import PSI_EPSILON


class TestPSI:
    def test_identical_distributions_are_zero(self):
        ref = np.array([0.1, 0.2, 0.3, 0.4])
        assert psi(ref, ref) == pytest.approx(0.0)

    def test_is_symmetric(self):
        a = np.array([0.1, 0.2, 0.3, 0.4])
        b = np.array([0.4, 0.3, 0.2, 0.1])
        assert psi(a, b) == pytest.approx(psi(b, a))

    def test_larger_shift_scores_higher(self):
        ref = np.array([0.25, 0.25, 0.25, 0.25])
        mild = np.array([0.30, 0.25, 0.25, 0.20])
        wild = np.array([0.70, 0.10, 0.10, 0.10])
        assert psi(ref, mild) < psi(ref, wild)

    def test_empty_bins_stay_finite(self):
        ref = np.array([0.5, 0.5, 0.0])
        live = np.array([0.0, 0.0, 1.0])
        value = psi(ref, live)
        assert np.isfinite(value)
        assert value > 1.0  # a gross shift, clearly over any threshold

    def test_all_zero_live_side_is_finite(self):
        # Before any traffic arrives the live fractions are all zero;
        # the epsilon floor turns that into a large finite PSI, and the
        # min_rows gate (not the statistic) keeps the verdict quiet.
        value = psi(np.array([0.5, 0.5]), np.zeros(2))
        assert np.isfinite(value)

    def test_empty_vectors_are_zero(self):
        assert psi(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="align"):
            psi(np.array([0.5, 0.5]), np.array([1.0]))

    def test_epsilon_floor_bounds_single_empty_bin(self):
        ref = np.array([1.0, 0.0])
        live = np.array([1.0, 0.0])
        assert psi(ref, live) == pytest.approx(0.0)
        assert PSI_EPSILON < 1e-3


class TestKS:
    def test_identical_samples_are_zero(self):
        a = np.linspace(0, 1, 50)
        assert ks_statistic(a, a) == pytest.approx(0.0)

    def test_disjoint_supports_are_one(self):
        a = np.linspace(0.0, 1.0, 30)
        b = np.linspace(5.0, 6.0, 30)
        assert ks_statistic(a, b) == pytest.approx(1.0)

    def test_matches_known_value(self):
        # CDFs of {0, 1} vs {0.5}: max gap is 0.5 at x=0 (0.5 vs 0.0),
        # then 0.5 again at 0.5 (0.5 vs 1.0).
        assert ks_statistic(np.array([0.0, 1.0]),
                            np.array([0.5])) == pytest.approx(0.5)

    def test_empty_side_is_zero(self):
        assert ks_statistic(np.array([]), np.array([1.0, 2.0])) == 0.0
        assert ks_statistic(np.array([1.0]), np.array([])) == 0.0

    def test_agrees_with_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 200)
        b = rng.normal(0.5, 1.3, 150)
        expected = scipy_stats.ks_2samp(a, b).statistic
        assert ks_statistic(a, b) == pytest.approx(expected)


class TestFractions:
    def test_normalizes_counts(self):
        assert fractions(np.array([1, 1, 2])).tolist() == [0.25, 0.25, 0.5]

    def test_all_zero_counts_stay_zero(self):
        result = fractions(np.zeros(4, dtype=np.int64))
        assert result.tolist() == [0.0] * 4
        assert not np.isnan(result).any()
