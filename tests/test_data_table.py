"""Tests for the typed in-memory Table/Record substrate."""

import numpy as np
import pytest

from repro.data import Record, Table


@pytest.fixture()
def table():
    return Table("restaurants", ["name", "city", "rating"],
                 [["fenix", "west hollywood", 4.5],
                  ["katsu", "los angeles", 4.0],
                  ["arts deli", "studio city", None]])


class TestRecord:
    def test_getitem(self, table):
        assert table[0]["name"] == "fenix"

    def test_unknown_column_raises(self, table):
        with pytest.raises(KeyError, match="no column"):
            table[0]["phone"]

    def test_get_default(self, table):
        assert table[0].get("phone", "n/a") == "n/a"

    def test_missing_value_is_none(self, table):
        assert table[2]["rating"] is None

    def test_as_dict(self, table):
        assert table[1].as_dict() == {"name": "katsu",
                                      "city": "los angeles", "rating": 4.0}

    def test_equality_and_hash(self):
        r1 = Record(1, ["a"], ["x"])
        r2 = Record(1, ["a"], ["x"])
        assert r1 == r2
        assert hash(r1) == hash(r2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="values for"):
            Record(0, ["a", "b"], ["only-one"])


class TestTable:
    def test_len_and_iter(self, table):
        assert len(table) == 3
        assert [r["name"] for r in table] == ["fenix", "katsu", "arts deli"]

    def test_by_id(self, table):
        assert table.by_id(2)["name"] == "arts deli"

    def test_by_id_missing(self, table):
        with pytest.raises(KeyError, match="no record with id"):
            table.by_id(99)

    def test_column(self, table):
        assert table.column("city") == ["west hollywood", "los angeles",
                                        "studio city"]

    def test_column_unknown(self, table):
        with pytest.raises(KeyError, match="no column"):
            table.column("nope")

    def test_project(self, table):
        projected = table.project(["city"])
        assert projected.columns == ("city",)
        assert projected[0]["city"] == "west hollywood"
        # ids preserved
        assert projected.by_id(2)["city"] == "studio city"

    def test_custom_ids(self):
        t = Table("t", ["x"], [["a"], ["b"]], ids=[10, 20])
        assert t.by_id(20)["x"] == "b"

    def test_duplicate_ids_raise(self):
        with pytest.raises(ValueError, match="duplicate record ids"):
            Table("t", ["x"], [["a"], ["b"]], ids=[1, 1])

    def test_duplicate_columns_raise(self):
        with pytest.raises(ValueError, match="duplicate column"):
            Table("t", ["x", "x"], [["a", "b"]])

    def test_id_row_count_mismatch(self):
        with pytest.raises(ValueError, match="ids for"):
            Table("t", ["x"], [["a"]], ids=[1, 2])

    def test_sample(self, table):
        rng = np.random.default_rng(0)
        sampled = table.sample(2, rng)
        assert sampled.num_rows == 2
        # sampled records keep their original ids
        for record in sampled:
            assert table.by_id(record.record_id) is not None

    def test_sample_too_many(self, table):
        with pytest.raises(ValueError, match="cannot sample"):
            table.sample(10, np.random.default_rng(0))
