"""Tests for transitivity and label-propagation label inference."""

import numpy as np
import pytest

from repro.core import LabelPropagationLabeler, TransitivityLabeler
from repro.data import MATCH, NON_MATCH, PairSet, RecordPair, Table


@pytest.fixture()
def tables():
    a = Table("A", ["v"], [[f"a{i}"] for i in range(5)])
    b = Table("B", ["v"], [[f"b{i}"] for i in range(5)])
    return a, b


class TestTransitivity:
    def test_match_closure(self, tables):
        a, b = tables
        # a0=b0 and (via b0's entity) a0=b1  =>  cluster {a0, b0, b1}
        labeled = [RecordPair(a[0], b[0], MATCH),
                   RecordPair(a[0], b[1], MATCH),
                   RecordPair(a[1], b[1], MATCH)]
        labeler = TransitivityLabeler(labeled)
        # a1 joined the same cluster through b1 -> a1 = b0 implied.
        assert labeler.infer_pair(RecordPair(a[1], b[0])) == MATCH

    def test_negative_between_clusters(self, tables):
        a, b = tables
        labeled = [RecordPair(a[0], b[0], MATCH),
                   RecordPair(a[1], b[1], MATCH),
                   RecordPair(a[0], b[1], NON_MATCH)]
        labeler = TransitivityLabeler(labeled)
        # clusters {a0,b0} and {a1,b1} are known non-matching.
        assert labeler.infer_pair(RecordPair(a[1], b[0])) == NON_MATCH

    def test_unknown_records_give_none(self, tables):
        a, b = tables
        labeler = TransitivityLabeler([RecordPair(a[0], b[0], MATCH)])
        assert labeler.infer_pair(RecordPair(a[4], b[4])) is None

    def test_unrelated_clusters_give_none(self, tables):
        a, b = tables
        labeled = [RecordPair(a[0], b[0], MATCH),
                   RecordPair(a[1], b[1], MATCH)]
        labeler = TransitivityLabeler(labeled)
        # No non-match edge between the clusters: nothing can be implied.
        assert labeler.infer_pair(RecordPair(a[0], b[1])) is None

    def test_infer_over_pool(self, tables):
        a, b = tables
        labeled = [RecordPair(a[0], b[0], MATCH),
                   RecordPair(a[0], b[1], MATCH)]
        labeler = TransitivityLabeler(labeled)
        pool = PairSet(a, b, [RecordPair(a[0], b[1]),  # implied match
                              RecordPair(a[3], b[3])])  # unknown
        inferred = labeler.infer(pool)
        assert inferred.indices.tolist() == [0]
        assert inferred.labels.tolist() == [MATCH]
        assert inferred.confidences.tolist() == [1.0]

    def test_unlabeled_input_rejected(self, tables):
        a, b = tables
        with pytest.raises(ValueError, match="unlabeled"):
            TransitivityLabeler([RecordPair(a[0], b[0])])

    def test_consistency_with_gold_on_benchmark(self, small_benchmark):
        pairs = list(small_benchmark.pairs)
        labeler = TransitivityLabeler(pairs[:400])
        inferred = labeler.infer(small_benchmark.pairs)
        gold = small_benchmark.pairs.labels
        if len(inferred):
            agreement = (inferred.labels == gold[inferred.indices]).mean()
            assert agreement > 0.95


class TestLabelPropagation:
    @pytest.fixture()
    def clustered_data(self, rng):
        X0 = rng.normal(loc=-2.0, scale=0.4, size=(60, 3))
        X1 = rng.normal(loc=+2.0, scale=0.4, size=(60, 3))
        X = np.vstack([X0, X1])
        y_true = np.concatenate([np.zeros(60, dtype=int),
                                 np.ones(60, dtype=int)])
        labels = np.full(120, -1)
        labels[:5] = 0
        labels[60:65] = 1
        return X, labels, y_true

    def test_propagates_to_clusters(self, clustered_data):
        X, labels, y_true = clustered_data
        labeler = LabelPropagationLabeler(confidence_threshold=0.6)
        inferred = labeler.infer(X, labels)
        assert len(inferred) > 50
        accuracy = (inferred.labels == y_true[inferred.indices]).mean()
        assert accuracy > 0.95

    def test_only_unlabeled_returned(self, clustered_data):
        X, labels, _ = clustered_data
        inferred = LabelPropagationLabeler().infer(X, labels)
        labeled_idx = set(np.flatnonzero(labels != -1).tolist())
        assert set(inferred.indices.tolist()) & labeled_idx == set()

    def test_confidence_threshold_filters(self, clustered_data):
        X, labels, _ = clustered_data
        loose = LabelPropagationLabeler(confidence_threshold=0.5)
        strict = LabelPropagationLabeler(confidence_threshold=0.999)
        assert len(strict.infer(X, labels)) <= len(loose.infer(X, labels))

    def test_confidences_in_range(self, clustered_data):
        X, labels, _ = clustered_data
        inferred = LabelPropagationLabeler(
            confidence_threshold=0.5).infer(X, labels)
        assert np.all(inferred.confidences >= 0.5)
        assert np.all(inferred.confidences <= 1.0 + 1e-9)

    def test_no_labels_rejected(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="at least one label"):
            LabelPropagationLabeler().infer(X, np.full(10, -1))

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="n_neighbors"):
            LabelPropagationLabeler(n_neighbors=0)
        with pytest.raises(ValueError, match="alpha"):
            LabelPropagationLabeler(alpha=1.0)
