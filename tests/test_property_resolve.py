"""Property-based tests for the resolve layer's determinism contracts.

The ISSUE-level invariants: the clustering a decision stream induces is
independent of decision order and of how the stream is cut into
batches, and record fusion is a pure function of (members, seed) —
never of encounter order.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.table import Record
from repro.resolve import (
    ConnectedComponents,
    CorrelationClustering,
    EntityStore,
    MatchDecision,
    RecordFusion,
    decisions_fingerprint,
    node_key,
    seeded_choice,
)

node_ids = st.integers(0, 12)
sides = st.sampled_from(["a", "b"])


@st.composite
def decision_streams(draw, max_size=40):
    """A stream of scored decisions over a small node universe."""
    n = draw(st.integers(1, max_size))
    decisions = []
    for _ in range(n):
        left = node_key(draw(sides), draw(node_ids))
        right = node_key(draw(sides), draw(node_ids))
        if left == right:
            continue
        decisions.append(MatchDecision(
            left, right,
            draw(st.floats(0.0, 1.0, allow_nan=False)),
            draw(st.booleans())))
    return decisions


def clustered(decisions, refine=False):
    cc = ConnectedComponents()
    cc.add_many(decisions)
    components = cc.components()
    if refine:
        components = CorrelationClustering(seed=5).refine(components,
                                                          decisions)
    return components


class TestClusteringInvariance:
    @settings(max_examples=60, deadline=None)
    @given(decision_streams(), st.randoms(use_true_random=False))
    def test_permutation_invariance(self, decisions, rnd):
        shuffled = list(decisions)
        rnd.shuffle(shuffled)
        assert clustered(shuffled) == clustered(decisions)
        assert decisions_fingerprint(shuffled) == \
            decisions_fingerprint(decisions)

    @settings(max_examples=60, deadline=None)
    @given(decision_streams(), st.integers(1, 10))
    def test_batch_partition_invariance(self, decisions, chunk):
        incremental = ConnectedComponents()
        for start in range(0, len(decisions), chunk):
            incremental.add_many(decisions[start:start + chunk])
        assert incremental.components() == clustered(decisions)

    @settings(max_examples=40, deadline=None)
    @given(decision_streams(), st.randoms(use_true_random=False),
           st.integers(1, 7))
    def test_store_apply_matches_batch_recluster(self, decisions, rnd,
                                                 chunk):
        """EntityStore end to end: shuffled, chunked apply() equals a
        one-shot batch apply — including the refined view."""
        shuffled = list(decisions)
        rnd.shuffle(shuffled)
        incremental = EntityStore(
            refiner=CorrelationClustering(seed=5))
        for start in range(0, len(shuffled), chunk):
            incremental.apply(shuffled[start:start + chunk])
        batch = EntityStore(refiner=CorrelationClustering(seed=5))
        batch.apply(decisions)
        assert incremental.entities() == batch.entities()
        assert incremental.fingerprint == batch.fingerprint

    @settings(max_examples=40, deadline=None)
    @given(decision_streams())
    def test_refinement_never_crosses_components(self, decisions):
        """Refinement only ever splits: every refined cluster sits
        wholly inside one connected component."""
        components = clustered(decisions)
        refined = clustered(decisions, refine=True)
        component_of = {node: canonical
                        for canonical, members in components.items()
                        for node in members}
        for cluster in refined.values():
            assert len({component_of[node] for node in cluster}) == 1
        assert sorted(node for m in refined.values() for node in m) == \
            sorted(node for m in components.values() for node in m)


values = st.one_of(st.text(max_size=6),
                   st.integers(-50, 50),
                   st.floats(-50, 50, allow_nan=False),
                   st.booleans(),
                   st.none())


class TestFusionDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(values, min_size=1, max_size=8),
           st.integers(0, 10**6),
           st.randoms(use_true_random=False),
           st.sampled_from(["longest", "most_frequent",
                            "numeric_median"]))
    def test_resolvers_ignore_value_order(self, raw, seed, rnd, name):
        present = [value for value in raw if value is not None]
        if not present:
            return
        shuffled = list(present)
        rnd.shuffle(shuffled)
        from repro.resolve import make_resolver

        resolver = make_resolver(name)
        first = resolver.resolve(present, np.random.default_rng(seed))
        second = resolver.resolve(shuffled, np.random.default_rng(seed))
        assert first == second or (first != first and second != second)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(max_size=4), min_size=1, max_size=6),
           st.integers(0, 10**6))
    def test_seeded_choice_multiset_property(self, candidates, seed):
        rng_a, rng_b = (np.random.default_rng(seed) for _ in range(2))
        assert seeded_choice(candidates, rng_a) == \
            seeded_choice(sorted(candidates, reverse=True), rng_b)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(values, min_size=2, max_size=2),
                    min_size=1, max_size=5),
           st.integers(0, 99),
           st.randoms(use_true_random=False))
    def test_fusion_is_pure_in_members_and_seed(self, rows, seed, rnd):
        records = [Record(i, ["x", "y"], row)
                   for i, row in enumerate(rows)]
        fusion = RecordFusion(default="most_frequent", seed=seed)
        golden = fusion.fuse("a:0", records)
        # fusing other entities in between must not perturb the outcome
        fusion.fuse("a:1", records)
        assert fusion.fuse("a:0", records) == golden
        # a fresh fusion with the same seed agrees
        assert RecordFusion(default="most_frequent",
                            seed=seed).fuse("a:0", records) == golden
