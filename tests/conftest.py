"""Shared fixtures: small synthetic datasets and classification blobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import load_benchmark


@pytest.fixture(scope="session")
def small_benchmark():
    """A small Fodors-Zagats analog (fast to generate and featurize)."""
    return load_benchmark("fodors_zagats", seed=7, scale=0.5)


@pytest.fixture(scope="session")
def hard_benchmark():
    """A small Abt-Buy analog with hard negatives and missing values."""
    return load_benchmark("abt_buy", seed=7, scale=0.05)


@pytest.fixture(scope="session")
def blob_data():
    """Linearly separable 2-class blobs: (X_train, y_train, X_test, y_test)."""
    rng = np.random.default_rng(42)
    n = 300
    X0 = rng.normal(loc=-1.5, scale=0.7, size=(n // 2, 6))
    X1 = rng.normal(loc=+1.5, scale=0.7, size=(n // 2, 6))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(n // 2, dtype=int),
                        np.ones(n // 2, dtype=int)])
    order = rng.permutation(n)
    X, y = X[order], y[order]
    return X[:240], y[:240], X[240:], y[240:]


@pytest.fixture(scope="session")
def noisy_data():
    """Nonlinear, overlapping 2-class data (XOR-ish with noise)."""
    rng = np.random.default_rng(13)
    n = 400
    X = rng.normal(size=(n, 8))
    signal = (X[:, 0] * X[:, 1] > 0).astype(int)
    flip = rng.random(n) < 0.1
    y = np.where(flip, 1 - signal, signal)
    return X[:320], y[:320], X[320:], y[320:]


@pytest.fixture(scope="session")
def trained_em(small_benchmark):
    """A small fitted AutoMLEM plus its splits (shared by serve tests)."""
    from repro.core import AutoMLEM

    train, valid, test = small_benchmark.splits(seed=0)
    matcher = AutoMLEM(n_iterations=2, forest_size=8, seed=0)
    matcher.fit(train, valid)
    return matcher, train, valid, test


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def fast_trial_timeout():
    """Sub-second per-trial limit for timeout tests (keeps tier-1 fast).

    Tests exercising the trial-timeout path should carry the
    ``trial_timeout`` marker and take their limit from this fixture, so
    the whole isolation machinery is covered without multi-second
    sleeps.
    """
    return 0.3
