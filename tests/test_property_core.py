"""Property-based tests for core EM invariants: splits, space, selection."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.automl import build_config_space
from repro.core.selftraining import select_confident, select_uncertain
from repro.data import MATCH, NON_MATCH, PairSet, RecordPair, Table
from repro.data.splits import stratified_split


def _pairs(n_pos, n_neg):
    n = n_pos + n_neg
    a = Table("A", ["v"], [[f"a{i}"] for i in range(n)])
    b = Table("B", ["v"], [[f"b{i}"] for i in range(n)])
    return PairSet(a, b, [
        RecordPair(a[i], b[i], MATCH if i < n_pos else NON_MATCH)
        for i in range(n)])


class TestSplitProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 40), st.integers(4, 80), st.integers(0, 999))
    def test_split_partition_property(self, n_pos, n_neg, seed):
        ps = _pairs(n_pos, n_neg)
        folds = stratified_split(ps, (0.5, 0.3, 0.2), seed=seed)
        keys = sorted(p.key for fold in folds for p in fold)
        assert keys == sorted(p.key for p in ps)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(10, 40), st.integers(10, 80), st.integers(0, 999))
    def test_stratification_property(self, n_pos, n_neg, seed):
        ps = _pairs(n_pos, n_neg)
        train, test = stratified_split(ps, (0.5, 0.5), seed=seed)
        # each fold's positive count within 1 of the proportional share
        assert abs(train.num_positive - n_pos / 2) <= 1


class TestConfigSpaceProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sampled_configs_always_buildable(self, seed):
        from repro.automl import build_pipeline
        space = build_config_space(models="all", forest_size=4)
        rng = np.random.default_rng(seed)
        config = space.sample(rng)
        pipeline = build_pipeline(config)  # must never raise
        assert pipeline.config == config

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_neighbors_stay_valid(self, seed):
        space = build_config_space(models="all", forest_size=4)
        rng = np.random.default_rng(seed)
        config = space.sample(rng)
        for _ in range(3):
            config = space.neighbor(config, rng)
            for name in config:
                assert space.is_active(name, config), name

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_encoding_width_stable(self, seed):
        space = build_config_space(models="all", forest_size=4)
        rng = np.random.default_rng(seed)
        vector = space.encode(space.sample(rng))
        assert vector.shape == (len(space),)
        assert np.all((vector >= -1.0) & (vector <= 1.0))


class TestSelectionProperties:
    @settings(max_examples=40)
    @given(st.integers(1, 60), st.integers(0, 60), st.integers(0, 999),
           st.floats(0.0, 1.0))
    def test_confident_selection_size_and_uniqueness(self, pool, batch,
                                                     seed, ratio):
        rng = np.random.default_rng(seed)
        confidences = rng.random(pool)
        predictions = rng.integers(0, 2, pool)
        selection = select_confident(confidences, predictions, batch,
                                     positive_ratio=ratio)
        assert len(selection) <= min(batch, pool)
        assert len(set(selection.indices.tolist())) == len(selection)

    @settings(max_examples=40)
    @given(st.integers(1, 60), st.integers(1, 60), st.integers(0, 999))
    def test_uncertain_picks_minimum(self, pool, batch, seed):
        rng = np.random.default_rng(seed)
        confidences = rng.random(pool)
        chosen = select_uncertain(confidences, batch)
        if len(chosen) < pool:
            threshold = confidences[chosen].max()
            others = np.delete(confidences, chosen)
            assert others.min() >= threshold - 1e-12
