"""Indexed blockers: exact equivalence to naive filters + determinism."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.blocking import MinHashLSHBlocker, QGramBlocker
from repro.data import MATCH, Table
from repro.similarity.tokenizers import qgram_tokenize


@pytest.fixture()
def tables():
    a = Table("A", ["name", "city"], [
        ["arnie mortons", "los angeles"],
        ["arts deli", "studio city"],
        ["fenix at the argyle", "hollywood"],
        ["cafe bizou", "sherman oaks"],
        [None, "pasadena"],
        ["spago", "los angeles"],
    ])
    b = Table("B", ["name", "city"], [
        ["arnie mortons of chicago", "los angeles"],
        ["arts delicatessen", "studio city"],
        ["fenix", "hollywood"],
        ["cafe bizou", "sherman oaks"],
        ["spago la", "los angeles"],
        [None, "glendale"],
        ["granita", "malibu"],
    ])
    return a, b


def naive_pairs(blocker, table_a, table_b):
    """The O(n*m) reference: every pair the blocker's predicate admits."""
    return {(left.record_id, right.record_id)
            for left in table_a for right in table_b
            if blocker.admits(left, right)}


class TestQGramEquivalence:
    """The prefix-filter index returns exactly the naive filter's pairs."""

    @pytest.mark.parametrize("q", (2, 3))
    @pytest.mark.parametrize("min_overlap", (1, 2, 3, 6))
    def test_matches_naive_reference(self, tables, q, min_overlap):
        a, b = tables
        blocker = QGramBlocker("name", q=q, min_overlap=min_overlap)
        got = {p.key for p in blocker.block(a, b)}
        assert got == naive_pairs(blocker, a, b)

    def test_naive_reference_is_qgram_overlap(self, tables):
        """admits() itself is the plain q-gram set-overlap definition."""
        a, b = tables
        blocker = QGramBlocker("name", q=3, min_overlap=2)
        for left in a:
            for right in b:
                lv, rv = left["name"], right["name"]
                expected = (lv is not None and rv is not None
                            and len(set(qgram_tokenize(str(lv), q=3))
                                    & set(qgram_tokenize(str(rv), q=3)))
                            >= 2)
                assert blocker.admits(left, right) == expected

    def test_no_duplicate_pairs(self, tables):
        a, b = tables
        keys = [p.key for p in QGramBlocker("name").block(a, b)]
        assert len(keys) == len(set(keys))

    def test_output_order_deterministic(self, tables):
        a, b = tables
        first = [p.key for p in QGramBlocker("name", min_overlap=2)
                 .block(a, b)]
        second = [p.key for p in QGramBlocker("name", min_overlap=2)
                  .block(a, b)]
        assert first == second

    def test_strict_threshold_prunes(self, tables):
        a, b = tables
        loose = {p.key for p in QGramBlocker("name", min_overlap=1)
                 .block(a, b)}
        strict = {p.key for p in QGramBlocker("name", min_overlap=4)
                  .block(a, b)}
        assert strict < loose

    def test_benchmark_equivalence(self, small_benchmark):
        a, b = small_benchmark.table_a, small_benchmark.table_b
        blocker = QGramBlocker("name", q=3, min_overlap=4)
        got = {p.key for p in blocker.block(a, b)}
        assert got == naive_pairs(blocker, a, b)


class TestMinHashEquivalence:
    """LSH banding block() == its own admits() predicate, exactly."""

    def test_matches_naive_reference(self, tables):
        a, b = tables
        blocker = MinHashLSHBlocker("name", num_perm=32, bands=8,
                                    random_state=5)
        got = {p.key for p in blocker.block(a, b)}
        assert got == naive_pairs(blocker, a, b)

    def test_identical_values_always_pair(self, tables):
        a, b = tables
        blocker = MinHashLSHBlocker("name", num_perm=16, bands=4,
                                    random_state=0)
        keys = {p.key for p in blocker.block(a, b)}
        assert (3, 3) in keys  # "cafe bizou" on both sides

    def test_missing_values_never_pair(self, tables):
        a, b = tables
        pairs = MinHashLSHBlocker("name", random_state=1).block(a, b)
        assert all(p.left.record_id != 4 and p.right.record_id != 5
                   for p in pairs)


class TestMinHashDeterminism:
    def test_same_seed_same_pairs(self, tables):
        a, b = tables
        runs = [
            [p.key for p in MinHashLSHBlocker(
                "name", num_perm=64, bands=16, random_state=9).block(a, b)]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_different_seeds_differ_somewhere(self, small_benchmark):
        a = small_benchmark.table_a
        b = small_benchmark.table_b
        by_seed = [
            {p.key for p in MinHashLSHBlocker(
                "name", num_perm=16, bands=8, random_state=seed).block(a, b)}
            for seed in (0, 1)
        ]
        assert by_seed[0] != by_seed[1]

    def test_stable_across_hash_randomization(self, tables, tmp_path):
        """Signatures must not depend on PYTHONHASHSEED (the builtin
        ``hash(str)`` is salted per process; stable_token_hash is not)."""
        script = tmp_path / "probe.py"
        script.write_text(
            "from repro.blocking import MinHashLSHBlocker\n"
            "from repro.data import Table\n"
            "a = Table('A', ['name'], [['arnie mortons'], ['arts deli'],\n"
            "                          ['cafe bizou']])\n"
            "b = Table('B', ['name'], [['arnie mortons of chicago'],\n"
            "                          ['arts delicatessen'],\n"
            "                          ['cafe bizou']])\n"
            "blocker = MinHashLSHBlocker('name', num_perm=32, bands=8,\n"
            "                            random_state=2)\n"
            "print(sorted(p.key for p in blocker.block(a, b)))\n",
            encoding="utf-8")
        src = Path(__file__).resolve().parents[1] / "src"
        outputs = set()
        for hash_seed in ("0", "12345"):
            env = dict(os.environ,
                       PYTHONHASHSEED=hash_seed, PYTHONPATH=str(src))
            result = subprocess.run(
                [sys.executable, str(script)], capture_output=True,
                text=True, check=True, env=env)
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, outputs


class TestRecallOnBenchmark:
    def test_qgram_recall(self, small_benchmark):
        gold = {p.key for p in small_benchmark.pairs if p.label == MATCH}
        pairs = QGramBlocker("name", q=3, min_overlap=2).block(
            small_benchmark.table_a, small_benchmark.table_b)
        found = {p.key for p in pairs}
        assert len(found & gold) / len(gold) > 0.9

    def test_minhash_recall_and_reduction(self, small_benchmark):
        a = small_benchmark.table_a
        b = small_benchmark.table_b
        gold = {p.key for p in small_benchmark.pairs if p.label == MATCH}
        pairs = MinHashLSHBlocker("name", num_perm=128, bands=32,
                                  random_state=0).block(a, b)
        found = {p.key for p in pairs}
        assert len(found & gold) / len(gold) > 0.8
        assert len(pairs) < 0.2 * a.num_rows * b.num_rows
