"""Tests for BatchMatcher / StreamMatcher and the serving telemetry."""

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.automl.runner import read_run_log
from repro.blocking import OverlapBlocker
from repro.serve import BatchMatcher, SchemaMismatchError, \
    ServeMetrics, StreamMatcher


@pytest.fixture()
def bundle(trained_em):
    return trained_em[0].export_bundle()


class TestBatchMatcher:
    def test_served_f1_equals_in_process(self, trained_em, bundle):
        matcher, _, _, test = trained_em
        with BatchMatcher(bundle, batch_size=16) as served:
            result = served.match_pairs(test)
        assert result.metrics() == matcher.evaluate(test)

    def test_micro_batches_bound_featurization(self, trained_em, bundle,
                                               monkeypatch):
        """Peak featurized rows never exceed batch_size (memory bound)."""
        _, _, _, test = trained_em
        served = BatchMatcher(bundle, batch_size=16)
        chunk_sizes = []
        original = served.generator.transform

        def recording_transform(pairs, **kwargs):
            chunk_sizes.append(len(pairs))
            return original(pairs, **kwargs)

        monkeypatch.setattr(served.generator, "transform",
                            recording_transform)
        result = served.match_pairs(test)
        assert chunk_sizes, "no featurization happened"
        assert max(chunk_sizes) <= 16
        assert len(chunk_sizes) == math.ceil(len(test) / 16)
        assert result.n_batches == len(chunk_sizes)
        assert result.max_batch_rows == max(chunk_sizes)
        assert served.metrics.snapshot()["max_batch_rows"] <= 16

    def test_batched_scores_equal_unbatched(self, trained_em, bundle):
        _, _, _, test = trained_em
        one_shot = BatchMatcher(bundle).match_pairs(test)
        batched = BatchMatcher(bundle, batch_size=7).match_pairs(test)
        assert np.array_equal(one_shot.probabilities, batched.probabilities)
        assert np.array_equal(one_shot.predictions, batched.predictions)
        assert one_shot.n_batches == 1
        assert batched.n_batches == math.ceil(len(test) / 7)

    def test_match_runs_blocking_end_to_end(self, small_benchmark, bundle):
        blocker = OverlapBlocker("name", min_overlap=2)
        with BatchMatcher(bundle, blocker, batch_size=256) as served:
            result = served.match(small_benchmark.table_a,
                                  small_benchmark.table_b)
        assert len(result) == len(blocker.block(small_benchmark.table_a,
                                                small_benchmark.table_b))
        assert set(np.unique(result.predictions)) <= {0, 1}
        assert len(result.matches) == result.n_matches

    def test_match_without_blocker_raises(self, small_benchmark, bundle):
        with pytest.raises(ValueError, match="needs a blocker"):
            BatchMatcher(bundle).match(small_benchmark.table_a,
                                       small_benchmark.table_b)

    def test_schema_mismatch_rejected_and_counted(self, trained_em, bundle):
        from repro.data.pairs import PairSet, RecordPair

        _, _, _, test = trained_em
        kept = [c for c in test.table_a.columns if c != bundle.plan[0][0]]
        narrow_a = test.table_a.project(kept)
        served = BatchMatcher(bundle, OverlapBlocker(bundle.plan[0][0]))
        # match() checks the tables before even blocking ...
        with pytest.raises(SchemaMismatchError):
            served.match(narrow_a, test.table_b)
        # ... and match_pairs counts the failed request in the metrics.
        bad = PairSet(narrow_a, test.table_b,
                      [RecordPair(narrow_a[0], test.table_b[0])])
        with pytest.raises(SchemaMismatchError):
            served.match_pairs(bad)
        assert served.metrics.snapshot()["errors"] == 1

    def test_invalid_batch_size(self, bundle):
        with pytest.raises(ValueError, match="batch_size"):
            BatchMatcher(bundle, batch_size=0)

    def test_request_log_records_batches(self, trained_em, bundle,
                                         tmp_path):
        _, _, _, test = trained_em
        log_path = tmp_path / "requests.jsonl"
        with BatchMatcher(bundle, batch_size=16,
                          request_log=log_path) as served:
            served.match_pairs(test)
            served.match_pairs(test[:5])
        records = read_run_log(log_path)
        kinds = [r["type"] for r in records]
        assert kinds == ["request", "request", "summary"]
        assert records[0]["n_pairs"] == len(test)
        assert records[0]["max_batch_rows"] <= 16
        assert records[0]["error"] is None
        assert records[-1]["requests"] == 2


class TestStreamMatcher:
    def test_incremental_batches_and_metrics(self, trained_em, bundle):
        _, _, _, test = trained_em
        stream = StreamMatcher(bundle)
        full = BatchMatcher(bundle).match_pairs(test)
        step = 10
        served = []
        for start in range(0, len(test), step):
            served.append(stream.submit(test[start:start + step]))
        probabilities = np.concatenate([r.probabilities for r in served])
        assert np.array_equal(probabilities, full.probabilities)
        snapshot = stream.metrics.snapshot()
        assert snapshot["requests"] == math.ceil(len(test) / step)
        assert snapshot["pairs"] == len(test)
        assert snapshot["errors"] == 0
        assert snapshot["total_latency"] > 0
        assert snapshot["pairs_per_second"] > 0

    def test_max_batch_rows_bounds_each_request(self, trained_em, bundle):
        _, _, _, test = trained_em
        stream = StreamMatcher(bundle, max_batch_rows=8)
        result = stream.submit(test)
        assert result.max_batch_rows <= 8
        assert result.n_batches == math.ceil(len(test) / 8)

    def test_error_counted_and_logged(self, trained_em, bundle, tmp_path):
        _, _, _, test = trained_em
        from repro.data.pairs import PairSet, RecordPair

        kept = [c for c in test.table_a.columns if c != bundle.plan[0][0]]
        narrow_a = test.table_a.project(kept)
        bad = PairSet(narrow_a, test.table_b,
                      [RecordPair(narrow_a[0], test.table_b[0])])
        log_path = tmp_path / "stream.jsonl"
        with StreamMatcher(bundle, request_log=log_path) as stream:
            stream.submit(test[:4])
            with pytest.raises(SchemaMismatchError):
                stream.submit(bad)
        snapshot = stream.metrics.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["errors"] == 1
        records = read_run_log(log_path)
        assert records[1]["error"].startswith("SchemaMismatchError")
        assert records[-1]["type"] == "summary"
        assert records[-1]["errors"] == 1


class TestStandingIndex:
    """submit_records against a persisted index == re-blocking from
    scratch (the streaming-blocking parity guarantee)."""

    @pytest.fixture()
    def blocker(self):
        from repro.blocking import QGramBlocker

        return QGramBlocker("name", q=3, min_overlap=2)

    def test_streamed_batches_equal_from_scratch(self, small_benchmark,
                                                 bundle, blocker, tmp_path):
        from repro.blocking import BlockIndex

        a, b = small_benchmark.table_a, small_benchmark.table_b
        blocker.index(b).save(tmp_path / "catalog.idx")
        scratch = BatchMatcher(bundle, blocker=blocker).match(a, b)
        scratch_scores = {pair.key: prob for pair, prob in
                         zip(scratch.pairs, scratch.probabilities)}

        index = BlockIndex.load(tmp_path / "catalog.idx")
        streamed_scores = {}
        with StreamMatcher(bundle, index=index) as stream:
            records = list(a)
            step = 25
            for start in range(0, len(records), step):
                result = stream.submit_records(records[start:start + step])
                for pair, prob in zip(result.pairs, result.probabilities):
                    streamed_scores[pair.key] = prob
        assert streamed_scores.keys() == scratch_scores.keys()
        for key, prob in streamed_scores.items():
            assert prob == scratch_scores[key]

    def test_submit_records_accepts_a_table(self, small_benchmark, bundle,
                                            blocker):
        a, b = small_benchmark.table_a, small_benchmark.table_b
        stream = StreamMatcher(bundle, index=blocker.index(b))
        result = stream.submit_records(a)
        expected = blocker.block(a, b)
        assert [p.key for p in result.pairs] == [p.key for p in expected]

    def test_extend_index_makes_new_records_visible(self, small_benchmark,
                                                    bundle, blocker):
        a, b = small_benchmark.table_a, small_benchmark.table_b
        from repro.blocking import BlockIndex

        catalog = list(b)
        index = BlockIndex(blocker, table_name=b.name, columns=b.columns)
        index.add_records(catalog[:-10])
        stream = StreamMatcher(bundle, index=index)
        before = {p.key for p in stream.submit_records(a).pairs}
        added = stream.extend_index(catalog[-10:])
        assert added == 10
        after = {p.key for p in stream.submit_records(a).pairs}
        full = {p.key for p in blocker.block(a, b)}
        assert before <= after
        assert after == full

    def test_record_methods_require_an_index(self, small_benchmark, bundle):
        a = small_benchmark.table_a
        stream = StreamMatcher(bundle)
        with pytest.raises(ValueError, match="standing block"):
            stream.submit_records(list(a)[:2])
        with pytest.raises(ValueError, match="standing block"):
            stream.extend_index(list(a)[:2])

    def test_empty_record_batch_rejected(self, small_benchmark, bundle,
                                         blocker):
        b = small_benchmark.table_b
        stream = StreamMatcher(bundle, index=blocker.index(b))
        with pytest.raises(ValueError, match="at least one record"):
            stream.submit_records([])


class TestSingleScoringPass:
    """_score_pairs runs the estimator once per batch; decisions derive
    from the probabilities already in hand (the double-scoring fix)."""

    class _CountingPredictor:
        def __init__(self, inner):
            self.inner = inner
            self.proba_calls = 0
            self.predict_calls = 0

        def predict_proba(self, X):
            self.proba_calls += 1
            return self.inner.predict_proba(X)

        def predict(self, X):
            self.predict_calls += 1
            return self.inner.predict(X)

    def test_estimator_runs_once_per_batch(self, trained_em, bundle):
        _, _, _, test = trained_em
        counting = self._CountingPredictor(bundle.predictor)
        bundle.predictor = counting
        result = BatchMatcher(bundle, batch_size=16).match_pairs(test)
        assert counting.predict_calls == 0
        assert counting.proba_calls == result.n_batches

    def test_decide_matches_old_native_predict_path(self, trained_em,
                                                    bundle):
        """Parity with the old path: predictions equal what a second
        ``bundle.predict(X)`` pass over the same features produces."""
        _, _, _, test = trained_em
        matcher = BatchMatcher(bundle)
        result = matcher.match_pairs(test)
        X = matcher.generator.transform(test)
        assert np.array_equal(result.predictions, bundle.predict(X))
        assert np.array_equal(result.probabilities,
                              bundle.predict_proba(X))

    def test_decide_matches_tuned_threshold_path(self, trained_em):
        from repro.serve import ModelBundle

        matcher, _, _, test = trained_em
        native = matcher.export_bundle()
        tuned = ModelBundle(native.predictor, plan=native.plan,
                            schema=native.schema, threshold=0.4,
                            sequence_max_chars=native.sequence_max_chars)
        serve = BatchMatcher(tuned)
        result = serve.match_pairs(test)
        X = serve.generator.transform(test)
        assert np.array_equal(result.predictions, tuned.predict(X))
        assert np.array_equal(tuned.decide(result.probabilities),
                              result.predictions)


class TestEmptyCandidatePath:
    """Zero-pair requests stay NaN- and warning-free end to end."""

    def test_submit_empty_pairset(self, trained_em, bundle):
        import warnings

        _, _, _, test = trained_em
        stream = StreamMatcher(bundle)
        with warnings.catch_warnings(), np.errstate(all="raise"):
            warnings.simplefilter("error")
            result = stream.submit(test[:0])
            scores = result.metrics()
            snapshot = stream.metrics.snapshot()
        assert len(result) == 0
        assert result.n_matches == 0
        assert len(result.probabilities) == 0
        assert scores == {"precision": 0.0, "recall": 0.0, "f1": 0.0}
        assert snapshot["requests"] == 1
        assert snapshot["pairs"] == 0
        assert not any(np.isnan(v) for v in snapshot.values()
                       if isinstance(v, float))

    def test_blocker_returning_no_candidates(self, small_benchmark,
                                             bundle):
        import warnings

        from repro.blocking import QGramBlocker
        from repro.data.table import Record

        a, b = small_benchmark.table_a, small_benchmark.table_b
        blocker = QGramBlocker("name", q=3, min_overlap=2)
        stream = StreamMatcher(bundle, index=blocker.index(b))
        # A probe record whose blocking attribute shares no q-grams
        # with any catalog value yields zero candidates.
        alien = Record(10**9, a.columns,
                       ["\x01\x02\x03\x04" if c == "name" else None
                        for c in a.columns])
        with warnings.catch_warnings(), np.errstate(all="raise"):
            warnings.simplefilter("error")
            result = stream.submit_records([alien])
            scores = result.metrics()
        assert len(result) == 0
        assert scores == {"precision": 0.0, "recall": 0.0, "f1": 0.0}
        assert stream.metrics.snapshot()["errors"] == 0


class TestHeterogeneousRecordBatch:
    def test_mixed_schema_batch_rejected(self, small_benchmark, bundle):
        from repro.blocking import QGramBlocker
        from repro.data.table import Record

        a, b = small_benchmark.table_a, small_benchmark.table_b
        stream = StreamMatcher(bundle,
                               index=QGramBlocker("name", q=3).index(b))
        stray = Record(10**9, ("name", "unrelated"), ["x", "y"])
        with pytest.raises(ValueError, match="heterogeneous record batch"):
            stream.submit_records([a[0], stray])
        # The good-path coercion is unchanged.
        result = stream.submit_records([a[0], a[1]])
        assert result.pairs.table_a.num_rows == 2


class TestServeMetrics:
    def test_counters_and_derived_rates(self):
        metrics = ServeMetrics()
        metrics.observe(100, 10, 0.5, max_batch_rows=50)
        metrics.observe(300, 30, 1.5, max_batch_rows=75)
        metrics.observe_error()
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["errors"] == 1
        assert snapshot["pairs"] == 400
        assert snapshot["matches"] == 40
        assert snapshot["max_latency"] == 1.5
        assert snapshot["max_batch_rows"] == 75
        assert snapshot["mean_latency"] == pytest.approx(1.0)
        assert snapshot["pairs_per_second"] == pytest.approx(200.0)

    def test_empty_snapshot_has_no_nan(self):
        snapshot = ServeMetrics().snapshot()
        assert snapshot["mean_latency"] == 0.0
        assert snapshot["pairs_per_second"] == 0.0
        assert snapshot["p50_latency"] == 0.0
        assert snapshot["p99_latency"] == 0.0

    def test_latency_histogram_buckets(self):
        from repro.serve.telemetry import LATENCY_BUCKETS

        metrics = ServeMetrics()
        for latency in (0.0005, 0.004, 0.004, 0.3, 42.0):
            metrics.observe(1, 0, latency)
        buckets = metrics.snapshot()["latency_buckets"]
        assert len(buckets) == len(LATENCY_BUCKETS) + 1
        assert sum(buckets) == 5
        assert buckets[0] == 1            # <= 1ms
        assert buckets[LATENCY_BUCKETS.index(0.005)] == 2
        assert buckets[LATENCY_BUCKETS.index(0.5)] == 1
        assert buckets[-1] == 1           # the open +inf bucket

    def test_percentiles_are_bucket_upper_bounds(self):
        metrics = ServeMetrics()
        for _ in range(98):
            metrics.observe(1, 0, 0.002)  # -> 2.5ms bucket
        metrics.observe(1, 0, 0.2)        # -> 250ms bucket
        metrics.observe(1, 0, 3.0)        # -> 5s bucket
        snapshot = metrics.snapshot()
        assert snapshot["p50_latency"] == 0.0025
        assert snapshot["p95_latency"] == 0.0025
        assert snapshot["p99_latency"] == 0.25

    def test_open_bucket_percentile_reports_observed_max(self):
        metrics = ServeMetrics()
        metrics.observe(1, 0, 77.0)       # beyond the last bound
        assert metrics.snapshot()["p99_latency"] == 77.0

    def test_errors_do_not_enter_latency_histogram(self):
        metrics = ServeMetrics()
        metrics.observe(1, 0, 0.002)
        metrics.observe_error("ValueError")
        snapshot = metrics.snapshot()
        assert sum(snapshot["latency_buckets"]) == 1
        assert snapshot["requests"] == 2

    def test_rejection_is_neither_a_request_nor_an_error(self):
        """The backpressure accounting contract: a request shed at the
        door reaches no worker, so it must appear in ``rejected`` only —
        ``requests`` and ``errors`` stay untouched, and the invariant
        ``requests = served + errors`` still holds."""
        metrics = ServeMetrics()
        metrics.observe(10, 1, 0.01)
        metrics.observe_error("TimeoutError")
        metrics.observe_rejected()
        metrics.observe_rejected()
        snapshot = metrics.snapshot()
        assert snapshot["rejected"] == 2
        assert snapshot["requests"] == 2
        assert snapshot["errors"] == 1
        assert snapshot["requests"] - snapshot["errors"] == 1  # served
        assert sum(snapshot["latency_buckets"]) == 1


class TestMonitoringTaps:
    """The matcher feeds attached taps without a second featurization."""

    class RecordingMonitor:
        def __init__(self):
            self.batches = []

        def observe(self, X, probabilities, predictions):
            self.batches.append((X.shape, len(probabilities),
                                 len(predictions)))

    class RecordingShadow:
        def __init__(self):
            self.requests = []

        def observe(self, pairs, probabilities, predictions, latency):
            self.requests.append((len(pairs), len(probabilities),
                                  latency))

    def test_monitor_tap_sees_every_micro_batch(self, small_benchmark,
                                                bundle):
        _, _, test = small_benchmark.splits(seed=0)
        tap = self.RecordingMonitor()
        stream = StreamMatcher(bundle, max_batch_rows=8, monitor=tap)
        stream.submit(test[:20])
        assert len(tap.batches) == 3  # 8 + 8 + 4
        assert sum(shape[0] for shape, _, _ in tap.batches) == 20
        n_features = len(bundle.plan)
        assert all(shape[1] == n_features for shape, _, _ in tap.batches)

    def test_shadow_tap_sees_each_request_once(self, small_benchmark,
                                               bundle):
        _, _, test = small_benchmark.splits(seed=0)
        tap = self.RecordingShadow()
        stream = StreamMatcher(bundle, max_batch_rows=8, shadow=tap)
        stream.submit(test[:20])
        stream.submit(test[20:30])
        assert [(n, n) for n, m, _ in tap.requests if n == m] \
            == [(20, 20), (10, 10)]
        assert all(latency >= 0.0 for _, _, latency in tap.requests)

    def test_taps_are_optional_and_absent_by_default(self, bundle):
        stream = StreamMatcher(bundle)
        assert stream.monitor is None
        assert stream.shadow is None


class TestFreshProcessReload:
    def test_bundle_reload_in_fresh_process_reproduces_f1(
            self, trained_em, tmp_path):
        """Acceptance: export → fresh interpreter → identical F1/probas."""
        matcher, _, _, test = trained_em
        from repro.data.io import write_pairs, write_table

        bundle_dir = tmp_path / "bundle"
        matcher.export_bundle(bundle_dir)
        write_table(test.table_a, tmp_path / "tableA.csv")
        write_table(test.table_b, tmp_path / "tableB.csv")
        write_pairs(test, tmp_path / "pairs.csv")

        in_process = matcher.evaluate(test)
        probabilities = matcher.predict_proba(test)[:, 1]

        script = (
            "import json, sys\n"
            "import numpy as np\n"
            "from repro.data.io import read_pairs, read_table\n"
            "from repro.serve import BatchMatcher, ModelBundle\n"
            "base = sys.argv[1]\n"
            "bundle = ModelBundle.load(base + '/bundle')\n"
            "a = read_table(base + '/tableA.csv')\n"
            "b = read_table(base + '/tableB.csv')\n"
            "pairs = read_pairs(base + '/pairs.csv', a, b)\n"
            "result = BatchMatcher(bundle, batch_size=16)"
            ".match_pairs(pairs)\n"
            "print(json.dumps({'metrics': result.metrics(), 'proba': "
            "result.probabilities.tolist()}))\n")
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" \
            + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True, text=True, env=env, timeout=300)
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout.strip().splitlines()[-1])
        assert payload["metrics"] == in_process
        assert np.array_equal(np.asarray(payload["proba"]), probabilities)