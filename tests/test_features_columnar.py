"""Equivalence and caching tests for the columnar feature engine.

Every fast path — columnar, tokenization-cached, process-parallel,
matrix-cached, and single-pair — must produce values bit-identical
(nan-aware) to the naive row-at-a-time reference loop, across string,
numeric and boolean attributes, missing values, and every registered
measure.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import PairSet, RecordPair, Table
from repro.features import (
    FeatureGenerator,
    FeatureMatrixCache,
    make_autoem_features,
)
from repro.features.columnar import TokenCache, resolve_n_jobs
from repro.similarity import (
    ALL_BOOLEAN_MEASURES,
    ALL_NUMERIC_MEASURES,
    ALL_STRING_MEASURES,
)
from repro.similarity import registry as simreg
from repro.similarity.registry import SimilarityMeasure

#: A plan exercising all 21 registered measures over a mixed schema.
FULL_PLAN = ([("name", m) for m in ALL_STRING_MEASURES]
             + [("price", m) for m in ALL_NUMERIC_MEASURES]
             + [("in_stock", m) for m in ALL_BOOLEAN_MEASURES])

COLUMNS = ["name", "price", "in_stock"]


def make_pairs(rows_a, rows_b, combos) -> PairSet:
    table_a = Table("A", COLUMNS, rows_a)
    table_b = Table("B", COLUMNS, rows_b)
    return PairSet(table_a, table_b,
                   [RecordPair(table_a[i], table_b[j]) for i, j in combos])


@pytest.fixture()
def duplicate_heavy_pairs() -> PairSet:
    """Mixed types, missing values, and heavy record repetition."""
    rows_a = [
        ["arts delicatessen", 12.0, True],
        ["fenix", None, False],
        ["arnie morton's of chicago " * 4, 19.5, None],
        [None, 3.0, True],
        ["", 0.0, False],
    ]
    rows_b = [
        ["arts deli", 12.5, True],
        ["fenix at the argyle", 9.0, None],
        ["arnie mortons chicago", 19.5, True],
        ["delicatessen", None, False],
        ["", float("inf"), True],
    ]
    rng = np.random.default_rng(3)
    combos = [(int(rng.integers(5)), int(rng.integers(5)))
              for _ in range(12)] * 5
    return make_pairs(rows_a, rows_b, combos)


class TestEquivalence:
    def test_columnar_matches_naive(self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN)
        reference = generator.transform_naive(duplicate_heavy_pairs)
        np.testing.assert_array_equal(generator.transform(
            duplicate_heavy_pairs), reference)

    def test_all_registered_measures_covered(self):
        assert len(FULL_PLAN) == 21

    def test_parallel_matches_naive(self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN, n_jobs=2,
                                     parallel_threshold=0)
        reference = generator.transform_naive(duplicate_heavy_pairs)
        np.testing.assert_array_equal(generator.transform(
            duplicate_heavy_pairs), reference)

    def test_transform_pair_matches_transform(self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN)
        matrix = generator.transform(duplicate_heavy_pairs)
        for i, pair in enumerate(duplicate_heavy_pairs):
            np.testing.assert_array_equal(generator.transform_pair(pair),
                                          matrix[i])

    def test_repeated_transform_with_warm_token_cache(
            self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN)
        first = generator.transform(duplicate_heavy_pairs)
        second = generator.transform(duplicate_heavy_pairs)
        np.testing.assert_array_equal(first, second)

    def test_engine_naive_selectable(self, duplicate_heavy_pairs):
        naive = FeatureGenerator(FULL_PLAN, engine="naive")
        np.testing.assert_array_equal(
            naive.transform(duplicate_heavy_pairs),
            naive.transform_naive(duplicate_heavy_pairs))

    def test_bool_and_float_values_not_conflated(self):
        # True and 1.0 hash equal but str() differently; dedup must
        # keep them distinct or exact_match would see "True" == "1.0".
        rows_a = [["1.0", 1.0, True], [True, 1.0, True]]
        rows_b = [["1.0", 1.0, True], ["True", 1.0, True]]
        pairs = make_pairs(rows_a, rows_b, [(0, 0), (1, 0), (0, 1), (1, 1)])
        generator = FeatureGenerator([("name", "exact_match")])
        reference = generator.transform_naive(pairs)
        np.testing.assert_array_equal(generator.transform(pairs), reference)
        assert reference[:, 0].tolist() == [1.0, 0.0, 0.0, 1.0]

    def test_empty_pair_set(self):
        pairs = make_pairs([["x", 1.0, True]], [["y", 2.0, False]], [])
        generator = FeatureGenerator(FULL_PLAN)
        assert generator.transform(pairs).shape == (0, 21)


class TestPropertyEquivalence:
    values = st.one_of(
        st.none(),
        st.booleans(),
        st.floats(allow_nan=False, width=32),
        st.text(alphabet="ab c'1.", max_size=12),
    )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(values, values), min_size=1, max_size=8),
           st.integers(0, 2 ** 31 - 1))
    def test_columnar_matches_naive_on_random_values(self, cells, seed):
        rng = np.random.default_rng(seed)
        rows_a = [[v1, None, None] for v1, _ in cells]
        rows_b = [[v2, None, None] for _, v2 in cells]
        n = len(cells)
        combos = [(int(rng.integers(n)), int(rng.integers(n)))
                  for _ in range(2 * n)]
        pairs = make_pairs(rows_a, rows_b, combos)
        plan = [("name", m) for m in ALL_STRING_MEASURES]
        generator = FeatureGenerator(plan)
        np.testing.assert_array_equal(generator.transform(pairs),
                                      generator.transform_naive(pairs))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.one_of(st.none(), st.floats(width=32)),
                              st.one_of(st.none(), st.floats(width=32))),
                    min_size=1, max_size=8))
    def test_numeric_measures_match_with_nan_and_inf(self, cells):
        rows_a = [[None, v1, None] for v1, _ in cells]
        rows_b = [[None, v2, None] for _, v2 in cells]
        combos = [(i, i) for i in range(len(cells))]
        pairs = make_pairs(rows_a, rows_b, combos)
        plan = [("price", m) for m in ALL_NUMERIC_MEASURES]
        generator = FeatureGenerator(plan)
        matrix = generator.transform(pairs)
        np.testing.assert_array_equal(matrix,
                                      generator.transform_naive(pairs))
        assert not np.isinf(matrix).any()


def _always_inf(v1: float, v2: float) -> float:
    return float("inf")


class TestInfGuard:
    @pytest.fixture(autouse=True)
    def register_inf_measure(self, monkeypatch):
        monkeypatch.setitem(
            simreg.MEASURES, "always_inf",
            SimilarityMeasure("always_inf", _always_inf, kind="numeric"))

    def test_inf_cannot_leak_into_matrices(self):
        pairs = make_pairs([["x", 1.0, True]], [["y", 2.0, False]], [(0, 0)])
        generator = FeatureGenerator([("price", "always_inf")])
        assert math.isnan(generator.transform(pairs)[0, 0])
        assert math.isnan(generator.transform_naive(pairs)[0, 0])
        assert math.isnan(generator.transform_pair(pairs[0])[0])


class TestSequenceCapKnob:
    long_a = "a" * 500
    long_b = "a" * 500 + "b"

    def _pairs(self):
        return make_pairs([[self.long_a, None, None]],
                          [[self.long_b, None, None]], [(0, 0)])

    def test_default_cap_matches_registry(self):
        generator = FeatureGenerator([("name", "lev_dist")])
        assert generator.transform(self._pairs())[0, 0] == 0.0

    def test_custom_cap_changes_dp_measures(self):
        # With the cap beyond both strings, the trailing "b" is seen.
        generator = FeatureGenerator([("name", "lev_dist")],
                                     sequence_max_chars=1000)
        assert generator.transform(self._pairs())[0, 0] == 1.0

    def test_custom_cap_equivalent_across_paths(self):
        generator = FeatureGenerator(
            [("name", m) for m in ALL_STRING_MEASURES],
            sequence_max_chars=8)
        pairs = self._pairs()
        reference = generator.transform_naive(pairs)
        np.testing.assert_array_equal(generator.transform(pairs), reference)
        np.testing.assert_array_equal(generator.transform_pair(pairs[0]),
                                      reference[0])

    def test_cap_is_part_of_cache_key(self):
        pairs = self._pairs()
        cache = FeatureMatrixCache()
        capped = FeatureGenerator([("name", "lev_dist")],
                                  sequence_max_chars=8, cache=cache)
        uncapped = FeatureGenerator([("name", "lev_dist")],
                                    sequence_max_chars=1000, cache=cache)
        assert capped.transform(pairs)[0, 0] == 0.0
        assert uncapped.transform(pairs)[0, 0] == 1.0
        assert cache.stats["hits"] == 0


class TestMatrixCache:
    def test_cache_hit_on_repeat_transform(self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN, cache=True)
        first = generator.transform(duplicate_heavy_pairs)
        second = generator.transform(duplicate_heavy_pairs)
        np.testing.assert_array_equal(first, second)
        assert generator.cache.stats == {"entries": 1, "hits": 1,
                                         "misses": 1}

    def test_cached_matrix_is_mutation_safe(self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN, cache=True)
        first = generator.transform(duplicate_heavy_pairs)
        first[:] = -99.0
        second = generator.transform(duplicate_heavy_pairs)
        assert not (second == -99.0).any()

    def test_labels_do_not_affect_the_key(self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN, cache=True)
        generator.transform(duplicate_heavy_pairs)
        generator.transform(duplicate_heavy_pairs.without_labels())
        assert generator.cache.hits == 1

    def test_different_pairs_miss(self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN, cache=True)
        generator.transform(duplicate_heavy_pairs)
        generator.transform(duplicate_heavy_pairs[:3])
        assert generator.cache.stats["entries"] == 2
        assert generator.cache.hits == 0

    def test_shared_cache_across_generators(self, duplicate_heavy_pairs):
        cache = FeatureMatrixCache()
        table_a = duplicate_heavy_pairs.table_a
        table_b = duplicate_heavy_pairs.table_b
        first = make_autoem_features(table_a, table_b, cache=cache)
        second = make_autoem_features(table_a, table_b, cache=cache)
        matrix = first.transform(duplicate_heavy_pairs)
        np.testing.assert_array_equal(
            second.transform(duplicate_heavy_pairs), matrix)
        assert cache.hits == 1

    def test_non_integer_record_ids_supported(self):
        from uuid import UUID

        from repro.features.cache import pairs_fingerprint

        rows_a = [["arts deli", 12.0, True], ["fenix", 9.0, False]]
        rows_b = [["arts delicatessen", 12.5, True], ["fenix bar", 8.0, None]]
        ids_a = ["rec-alpha", UUID("12345678-1234-5678-1234-567812345678")]
        table_a = Table("A", COLUMNS, rows_a, ids=ids_a)
        table_b = Table("B", COLUMNS, rows_b, ids=["x", "y"])
        pairs = PairSet(table_a, table_b,
                        [RecordPair(table_a[0], table_b[0]),
                         RecordPair(table_a[1], table_b[1])])
        fingerprint = pairs_fingerprint(pairs)  # used to crash on str ids
        assert fingerprint == pairs_fingerprint(pairs)
        generator = FeatureGenerator(FULL_PLAN, cache=True)
        first = generator.transform(pairs)
        np.testing.assert_array_equal(generator.transform(pairs), first)
        assert generator.cache.hits == 1

    def test_id_types_not_conflated(self):
        from repro.features.cache import pairs_fingerprint

        rows = [["a", 1.0, True], ["b", 2.0, False]]
        int_ids = Table("A", COLUMNS, rows, ids=[1, 2])
        str_ids = Table("A", COLUMNS, rows, ids=["1", "2"])
        other = Table("B", COLUMNS, rows)
        int_pairs = PairSet(int_ids, other,
                            [RecordPair(int_ids[0], other[0])])
        str_pairs = PairSet(str_ids, other,
                            [RecordPair(str_ids[0], other[0])])
        assert pairs_fingerprint(int_pairs) != pairs_fingerprint(str_pairs)

    def test_lru_eviction(self, duplicate_heavy_pairs):
        generator = FeatureGenerator(FULL_PLAN,
                                     cache=FeatureMatrixCache(max_entries=1))
        generator.transform(duplicate_heavy_pairs)
        generator.transform(duplicate_heavy_pairs[:3])
        assert len(generator.cache) == 1
        generator.transform(duplicate_heavy_pairs)
        assert generator.cache.hits == 0


class TestKnobValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            FeatureGenerator([("name", "lev_dist")], engine="gpu")

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(0)

    def test_token_cache_bounded(self):
        cache = TokenCache(max_entries=2)
        cache[("space", "a")] = ["a"]
        cache[("space", "b")] = ["b"]
        cache[("space", "c")] = ["c"]  # triggers wholesale eviction
        assert len(cache) == 1
        assert ("space", "c") in cache

    def test_token_cache_safe_under_concurrent_writers(self):
        import threading

        cache = TokenCache(max_entries=64)
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def writer(thread_index):
            barrier.wait()
            for i in range(per_thread):
                key = ("space", f"{thread_index}-{i % 100}")
                cache[key] = [str(thread_index), str(i)]
                hit = cache.get(key)
                # A racing wholesale eviction may drop the entry, but a
                # present entry is always whole.
                assert hit is None or hit == [str(thread_index), str(i)]

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64


class TestValueDedupKeys:
    def test_negative_zero_not_collapsed_with_positive_zero(self):
        """-0.0 == 0.0 (equal hash too) but str() renders them
        differently, so they must stay distinct dedup entries —
        regression for the columnar/naive mismatch on [-0.0 vs 0.0]."""
        rows_a = [[-0.0, None, None], [0.0, None, None]]
        rows_b = [[None, None, None], [None, None, None]]
        pairs = make_pairs(rows_a, rows_b, [(0, 0), (1, 1)])
        plan = [("name", m) for m in ALL_STRING_MEASURES]
        generator = FeatureGenerator(plan)
        np.testing.assert_array_equal(generator.transform(pairs),
                                      generator.transform_naive(pairs))

    def test_bool_and_float_one_stay_distinct(self):
        rows_a = [[True, None, None], [1.0, None, None]]
        rows_b = [["True", None, None], ["True", None, None]]
        pairs = make_pairs(rows_a, rows_b, [(0, 0), (1, 1)])
        plan = [("name", m) for m in ALL_STRING_MEASURES]
        generator = FeatureGenerator(plan)
        np.testing.assert_array_equal(generator.transform(pairs),
                                      generator.transform_naive(pairs))
