"""Tests for the corruption operators and profiles."""

import numpy as np
import pytest

from repro.data.synthetic import CorruptionProfile, Corruptor
from repro.data.synthetic.corruption import (
    abbreviate_token,
    drop_token,
    inject_tokens,
    swap_tokens,
    typo,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(5)


class TestOperators:
    def test_typo_changes_string(self, rng):
        original = "restaurant"
        changed = sum(typo(original, rng) != original for _ in range(20))
        assert changed >= 15  # a delete+insert can occasionally cancel out

    def test_typo_short_string_unchanged(self, rng):
        assert typo("a", rng) == "a"

    def test_abbreviate_shortens(self, rng):
        token = "delicatessen"
        for _ in range(10):
            out = abbreviate_token(token, rng)
            assert len(out) < len(token)

    def test_abbreviate_short_token_kept(self, rng):
        assert abbreviate_token("abc", rng) == "abc"

    def test_drop_token_never_empties(self, rng):
        assert drop_token(["only"], rng) == ["only"]
        assert len(drop_token(["a", "b", "c"], rng)) == 2

    def test_swap_adjacent(self, rng):
        out = swap_tokens(["a", "b"], rng)
        assert out == ["b", "a"]

    def test_inject_adds(self, rng):
        out = inject_tokens(["a"], ["noise"], rng, count=2)
        assert len(out) == 3
        assert out.count("noise") == 2


class TestCorruptor:
    def test_zero_profile_is_identity(self, rng):
        corruptor = Corruptor(CorruptionProfile(
            typo_prob=0, abbreviation_prob=0, token_drop_prob=0,
            token_swap_prob=0), rng)
        assert corruptor.corrupt_string("arts delicatessen") == \
            "arts delicatessen"

    def test_missing_prob_one_gives_none(self, rng):
        corruptor = Corruptor(CorruptionProfile(missing_prob=1.0), rng)
        assert corruptor.corrupt_string("anything") is None

    def test_synonym_substitution(self, rng):
        profile = CorruptionProfile(
            typo_prob=0, abbreviation_prob=0, token_drop_prob=0,
            token_swap_prob=0, synonym_prob=1.0,
            synonyms={"american": ["steakhouses"]})
        corruptor = Corruptor(profile, rng)
        assert corruptor.corrupt_string("american") == "steakhouses"

    def test_long_text_gets_proportionally_dirtier(self):
        profile = CorruptionProfile(
            typo_prob=0, abbreviation_prob=0, token_drop_prob=0.5,
            token_swap_prob=0)
        short, long_ = "alpha beta", " ".join(f"tok{i}" for i in range(30))
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        short_dropped = []
        long_dropped = []
        for _ in range(30):
            short_dropped.append(
                2 - len(Corruptor(profile, rng1).corrupt_string(short)
                        .split()))
            long_dropped.append(
                30 - len(Corruptor(profile, rng2).corrupt_string(long_)
                         .split()))
        assert np.mean(long_dropped) > np.mean(short_dropped)

    def test_numeric_jitter_and_missing(self, rng):
        corruptor = Corruptor(CorruptionProfile(numeric_jitter=0.5,
                                                numeric_missing_prob=0.0),
                              rng)
        values = [corruptor.corrupt_numeric(100.0) for _ in range(50)]
        assert all(v is not None for v in values)
        assert any(v != 100.0 for v in values)

    def test_numeric_missing(self, rng):
        corruptor = Corruptor(CorruptionProfile(numeric_missing_prob=1.0),
                              rng)
        assert corruptor.corrupt_numeric(5.0) is None

    def test_boolean_flip(self, rng):
        corruptor = Corruptor(CorruptionProfile(), rng)
        outcomes = {corruptor.corrupt_boolean(True, flip_prob=1.0)
                    for _ in range(5)}
        assert outcomes == {False}


class TestProfileScaling:
    def test_scaled_multiplies(self):
        profile = CorruptionProfile(typo_prob=0.1, token_drop_prob=0.2)
        scaled = profile.scaled(2.0)
        assert scaled.typo_prob == pytest.approx(0.2)
        assert scaled.token_drop_prob == pytest.approx(0.4)

    def test_scaled_caps_probabilities(self):
        profile = CorruptionProfile(typo_prob=0.8)
        assert profile.scaled(10.0).typo_prob == 0.95

    def test_scaled_keeps_synonyms(self):
        profile = CorruptionProfile(synonyms={"a": ["b"]})
        assert profile.scaled(1.5).synonyms == {"a": ["b"]}
