"""Tests for the CART decision trees."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor, f1_score
from repro.ml.tree import resolve_max_features


class TestMaxFeaturesResolution:
    @pytest.mark.parametrize("value,n,expected", [
        (None, 20, 20), ("sqrt", 16, 4), ("log2", 16, 4),
        (5, 20, 5), (50, 20, 20), (0.5, 20, 10), (1.0, 20, 20),
    ])
    def test_values(self, value, n, expected):
        assert resolve_max_features(value, n) == expected

    def test_invalid_float(self):
        with pytest.raises(ValueError, match="float max_features"):
            resolve_max_features(1.5, 10)

    def test_invalid_string(self):
        with pytest.raises(ValueError, match="unknown max_features"):
            resolve_max_features("cube", 10)

    def test_invalid_int(self):
        with pytest.raises(ValueError, match="max_features must be"):
            resolve_max_features(0, 10)


class TestClassifier:
    def test_separable_data_perfect(self, blob_data):
        X_train, y_train, X_test, y_test = blob_data
        tree = DecisionTreeClassifier(random_state=0).fit(X_train, y_train)
        assert f1_score(y_test, tree.predict(X_test)) > 0.9

    def test_predict_proba_sums_to_one(self, blob_data):
        X_train, y_train, X_test, _ = blob_data
        tree = DecisionTreeClassifier().fit(X_train, y_train)
        probs = tree.predict_proba(X_test)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_max_depth_one_is_a_stump(self, noisy_data):
        X_train, y_train, _, _ = noisy_data
        tree = DecisionTreeClassifier(max_depth=1).fit(X_train, y_train)
        assert tree.tree_.n_leaves <= 2

    def test_min_samples_leaf_respected(self, noisy_data):
        X_train, y_train, _, _ = noisy_data
        tree = DecisionTreeClassifier(min_samples_leaf=30).fit(X_train,
                                                               y_train)
        leaves = tree.tree_.apply(np.asarray(X_train, dtype=np.float64))
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 30

    def test_max_leaf_nodes_cap(self, noisy_data):
        X_train, y_train, _, _ = noisy_data
        tree = DecisionTreeClassifier(max_leaf_nodes=5).fit(X_train, y_train)
        assert tree.tree_.n_leaves <= 5

    def test_entropy_criterion_works(self, blob_data):
        X_train, y_train, X_test, y_test = blob_data
        tree = DecisionTreeClassifier(criterion="entropy").fit(X_train,
                                                               y_train)
        assert f1_score(y_test, tree.predict(X_test)) > 0.9

    def test_invalid_criterion(self):
        with pytest.raises(ValueError, match="criterion"):
            DecisionTreeClassifier(criterion="mse")

    def test_affine_rescaling_invariance(self, noisy_data):
        """CART partitions are invariant to per-feature affine maps."""
        X_train, y_train, X_test, _ = noisy_data
        tree1 = DecisionTreeClassifier(random_state=3).fit(X_train, y_train)
        scale = np.arange(1, X_train.shape[1] + 1) * 2.5
        shift = np.linspace(-3, 3, X_train.shape[1])
        tree2 = DecisionTreeClassifier(random_state=3).fit(
            X_train * scale + shift, y_train)
        np.testing.assert_array_equal(tree1.predict(X_test),
                                      tree2.predict(X_test * scale + shift))

    def test_sample_weight_zero_is_removal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4))
        y = (X[:, 0] > 0).astype(int)
        # Poison half the data with wrong labels but zero weight.
        X_all = np.vstack([X, X])
        y_all = np.concatenate([y, 1 - y])
        weights = np.concatenate([np.ones(100), np.zeros(100)])
        tree1 = DecisionTreeClassifier(random_state=1).fit(
            X_all, y_all, sample_weight=weights)
        tree2 = DecisionTreeClassifier(random_state=1).fit(X, y)
        probe = rng.normal(size=(50, 4))
        np.testing.assert_array_equal(tree1.predict(probe),
                                      tree2.predict(probe))

    def test_class_weight_balanced_boosts_minority_recall(self):
        rng = np.random.default_rng(2)
        n_major, n_minor = 450, 50
        X = np.vstack([rng.normal(-0.3, 1.0, size=(n_major, 3)),
                       rng.normal(+0.9, 1.0, size=(n_minor, 3))])
        y = np.concatenate([np.zeros(n_major, dtype=int),
                            np.ones(n_minor, dtype=int)])
        plain = DecisionTreeClassifier(max_depth=3, random_state=0)
        balanced = DecisionTreeClassifier(max_depth=3, random_state=0,
                                          class_weight="balanced")
        plain.fit(X, y)
        balanced.fit(X, y)
        assert balanced.predict(X).sum() >= plain.predict(X).sum()

    def test_string_class_labels(self):
        X = np.asarray([[0.0], [1.0], [2.0], [3.0]])
        y = np.asarray(["no", "no", "yes", "yes"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) <= {"no", "yes"}

    def test_nan_input_rejected(self):
        X = np.asarray([[np.nan], [1.0]])
        with pytest.raises(ValueError, match="impute"):
            DecisionTreeClassifier().fit(X, [0, 1])

    def test_predict_before_fit(self):
        from repro.ml import NotFittedError
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_single_class_training(self):
        X = np.asarray([[1.0], [2.0]])
        tree = DecisionTreeClassifier().fit(X, [1, 1])
        assert tree.predict(X).tolist() == [1, 1]

    def test_constant_features_make_leaf(self):
        X = np.ones((10, 3))
        y = np.asarray([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.tree_.n_leaves == 1


class TestRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        predictions = tree.predict(X)
        assert predictions[10] == pytest.approx(0.0, abs=0.5)
        assert predictions[90] == pytest.approx(10.0, abs=0.5)

    def test_reduces_mse_with_depth(self, noisy_data):
        X_train, y_train, X_test, y_test = noisy_data
        y_train = y_train.astype(float)
        y_test = y_test.astype(float)
        mses = []
        for depth in (1, 3, 6):
            tree = DecisionTreeRegressor(max_depth=depth).fit(X_train,
                                                              y_train)
            mses.append(((tree.predict(X_test) - y_test) ** 2).mean())
        assert mses[0] >= mses[-1]

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        tree = DecisionTreeRegressor().fit(X, np.full(20, 3.5))
        assert np.allclose(tree.predict(X), 3.5)
