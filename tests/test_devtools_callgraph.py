"""The project call graph + lock model: import resolution (absolute and
relative), method dispatch, held-lock tracking through ``with`` blocks
and explicit acquire/release, interprocedural entry-held propagation,
thread-root detection, and spot checks against the real tree."""

import textwrap
from pathlib import Path

from repro.devtools.base import parse_module
from repro.devtools.callgraph import CallGraph, Held

REPO_ROOT = Path(__file__).resolve().parents[1]


def build_graph(tmp_path, files):
    """Write a fixture tree under ``tmp_path`` and build its graph."""
    contexts = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    for path in sorted((tmp_path / "src").rglob("*.py")):
        ctx, err = parse_module(path, path.as_posix())
        assert err is None, err
        contexts.append(ctx)
    return CallGraph.build(contexts)


def real_graph():
    contexts = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        ctx, err = parse_module(path, path.as_posix())
        assert err is None, err
        contexts.append(ctx)
    return CallGraph.build(contexts)


# -- import + call resolution -------------------------------------------


def test_resolves_absolute_and_relative_imports(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/util.py": "def helper():\n    return 1\n",
        "src/repro/pkg/__init__.py": "",
        "src/repro/pkg/a.py": """\
            from repro.util import helper
            from ..util import helper as aliased
            from .b import sibling

            def entry():
                helper()
                aliased()
                sibling()
        """,
        "src/repro/pkg/b.py": "def sibling():\n    return 2\n",
    })
    entry = graph.functions["repro.pkg.a.entry"]
    callees = {site.callee for site in entry.calls}
    assert callees == {"repro.util.helper", "repro.pkg.b.sibling"}


def test_relative_import_in_package_init_resolves_to_self(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/pkg/__init__.py": """\
            from .core import work

            def run():
                work()
        """,
        "src/repro/pkg/core.py": "def work():\n    return 1\n",
    })
    run = graph.functions["repro.pkg.run"]
    assert {site.callee for site in run.calls} == {"repro.pkg.core.work"}


def test_self_method_dispatch_through_project_base_class(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/base.py": """\
            class Base:
                def shared(self):
                    return 1
        """,
        "src/repro/child.py": """\
            from .base import Base

            class Child(Base):
                def entry(self):
                    self.shared()
        """,
    })
    entry = graph.functions["repro.child.Child.entry"]
    assert {site.callee for site in entry.calls} == {
        "repro.base.Base.shared"}


def test_attribute_type_inference_resolves_receiver_methods(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/store.py": """\
            class Store:
                def put(self, value):
                    return value
        """,
        "src/repro/user.py": """\
            from .store import Store

            class User:
                def __init__(self):
                    self._store = Store()

                def entry(self, value):
                    self._store.put(value)
        """,
    })
    user = graph.classes["repro.user.User"]
    assert user.attr_types["_store"] == "repro.store.Store"
    entry = graph.functions["repro.user.User.entry"]
    assert {site.callee for site in entry.calls} == {
        "repro.store.Store.put"}


def test_constructor_call_resolves_to_init(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/thing.py": """\
            class Thing:
                def __init__(self):
                    self.x = 1
        """,
        "src/repro/maker.py": """\
            from .thing import Thing

            def make():
                return Thing()
        """,
    })
    make = graph.functions["repro.maker.make"]
    assert {site.callee for site in make.calls} == {
        "repro.thing.Thing.__init__"}


# -- the lock model ------------------------------------------------------


LOCKED_CLASS = {
    "src/repro/__init__.py": "",
    "src/repro/locked.py": """\
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def store(self, key, value):
                with self._lock:
                    self._items[key] = value
                    self._note(key)

            def _note(self, key):
                return key
    """,
}


def test_with_lock_context_tracks_held_set(tmp_path):
    graph = build_graph(tmp_path, LOCKED_CLASS)
    cache = graph.classes["repro.locked.Cache"]
    assert cache.lock_attrs == {"_lock": "lock"}
    store = graph.functions["repro.locked.Cache.store"]
    [site] = [s for s in store.calls
              if s.callee == "repro.locked.Cache._note"]
    assert site.held == frozenset({Held("repro.locked.Cache._lock")})
    [write] = store.writes
    assert write.attr == "_items"
    assert Held("repro.locked.Cache._lock") in write.held


def test_rwlock_context_managers_carry_modes(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/concurrency.py": """\
            class ReadWriteLock:
                def read_locked(self):
                    ...

                def write_locked(self):
                    ...
        """,
        "src/repro/index.py": """\
            from .concurrency import ReadWriteLock

            class Index:
                def __init__(self):
                    self._rw = ReadWriteLock()
                    self._rows = []

                def add(self, row):
                    with self._rw.write_locked():
                        self._rows.append(row)

                def snapshot(self):
                    with self._rw.read_locked():
                        return list(self._rows)
        """,
    })
    index = graph.classes["repro.index.Index"]
    assert index.lock_attrs == {"_rw": "rwlock"}
    add = graph.functions["repro.index.Index.add"]
    [write] = add.writes
    assert write.held == frozenset(
        {Held("repro.index.Index._rw", "write")})
    assert not Held("repro.index.Index._rw", "read").covers_write()
    assert Held("repro.index.Index._rw", "write").covers_write()


def test_explicit_acquire_release_adjusts_held_set(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/manual.py": """\
            import threading

            class Manual:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    self._lock.acquire()
                    self._n += 1
                    self._lock.release()
                    self._n = self._n
        """,
    })
    bump = graph.functions["repro.manual.Manual.bump"]
    locked = [w for w in bump.writes
              if Held("repro.manual.Manual._lock") in w.held]
    unlocked = [w for w in bump.writes if not w.held]
    assert len(locked) == 1 and len(unlocked) == 1


def test_entry_held_propagates_through_callers(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/prop.py": """\
            import threading

            class Prop:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0
                    self._reset_locked()

                def reset(self):
                    with self._lock:
                        self._reset_locked()

                def _reset_locked(self):
                    self._n = 0
        """,
    })
    helper = graph.functions["repro.prop.Prop._reset_locked"]
    # The __init__ call site imposes no lock obligation; the one real
    # caller holds the lock, so the helper is analyzed as locked.
    assert helper.entry_held == frozenset(
        {Held("repro.prop.Prop._lock")})


def test_unlocked_caller_clears_propagated_entry_set(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/prop.py": """\
            import threading

            class Prop:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def reset(self):
                    with self._lock:
                        self._helper()

                def sloppy_reset(self):
                    self._helper()

                def _helper(self):
                    self._n = 0
        """,
    })
    helper = graph.functions["repro.prop.Prop._helper"]
    # Intersection over call sites: one caller is unlocked.
    assert helper.entry_held == frozenset()


def test_thread_target_detection(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/svc.py": """\
            import threading

            class Service:
                def start(self):
                    self._thread = threading.Thread(
                        target=self._loop, daemon=True)
                    self._thread.start()

                def _loop(self):
                    while True:
                        pass
        """,
    })
    assert graph.thread_targets == {"repro.svc.Service._loop"}
    reachable = graph.reachable_from(graph.thread_targets)
    assert "repro.svc.Service._loop" in reachable


def test_guard_comments_collected_per_class(tmp_path):
    graph = build_graph(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/guarded.py": """\
            import threading

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()
                    # repro-guard: _table by _lock
                    self._table = None
        """,
    })
    model = graph.classes["repro.guarded.Guarded"]
    assert model.explicit_guards == {"_table": "_lock"}


# -- spot checks against the real tree ----------------------------------


def test_real_tree_lock_inventory_and_thread_roots():
    graph = real_graph()
    assert graph.thread_targets == {
        "repro.serve.service.MatchService._worker_loop"}
    index = graph.classes["repro.blocking.index.BlockIndex"]
    assert index.lock_attrs["_rw_lock"] == "rwlock"
    assert index.lock_attrs["_table_lock"] == "lock"
    monitor = graph.classes["repro.monitor.drift.FeatureDriftMonitor"]
    assert monitor.lock_attrs["_lock"] == "rwlock"


def test_real_tree_locked_helpers_infer_write_entry():
    graph = real_graph()
    flush = graph.functions[
        "repro.monitor.drift.FeatureDriftMonitor._flush_locked"]
    assert Held("repro.monitor.drift.FeatureDriftMonitor._lock",
                "write") in flush.entry_held
    register = graph.functions[
        "repro.blocking.index.BlockIndex._register"]
    assert Held("repro.blocking.index.BlockIndex._rw_lock",
                "write") in register.entry_held
