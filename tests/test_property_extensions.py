"""Property-based tests for the extension modules (explain/threshold/
ensemble weights)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.thresholding import apply_threshold, tune_threshold
from repro.ml.calibration import expected_calibration_error
from repro.ml.metrics import f1_score

probs_and_labels = st.integers(5, 80).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=n,
                 max_size=n),
        st.lists(st.integers(0, 1), min_size=n, max_size=n)))


class TestThresholdProperties:
    @settings(max_examples=60)
    @given(probs_and_labels)
    def test_tuned_never_worse_than_default(self, data):
        probabilities, y = np.asarray(data[0]), np.asarray(data[1])
        result = tune_threshold(probabilities, y)
        assert result.score >= result.default_score - 1e-12

    @settings(max_examples=60)
    @given(probs_and_labels)
    def test_reported_score_matches_application(self, data):
        probabilities, y = np.asarray(data[0]), np.asarray(data[1])
        result = tune_threshold(probabilities, y)
        achieved = f1_score(y, apply_threshold(probabilities,
                                               result.threshold))
        assert achieved == result.score

    @settings(max_examples=40)
    @given(probs_and_labels)
    def test_threshold_within_unit_intervalish(self, data):
        probabilities, y = np.asarray(data[0]), np.asarray(data[1])
        result = tune_threshold(probabilities, y)
        assert -0.01 <= result.threshold <= 1.01


class TestECEProperties:
    @settings(max_examples=60)
    @given(probs_and_labels, st.integers(1, 20))
    def test_ece_bounds(self, data, n_bins):
        probabilities, y = np.asarray(data[0]), np.asarray(data[1])
        ece = expected_calibration_error(y, probabilities, n_bins=n_bins)
        assert 0.0 <= ece <= 1.0


class TestLimeProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_constant_model_gets_zero_attributions(self, seed):
        from repro.explain import LimeExplainer
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(100, 3))

        def constant_proba(Z):
            return np.column_stack([np.full(len(Z), 0.3),
                                    np.full(len(Z), 0.7)])

        explainer = LimeExplainer(constant_proba, X, n_samples=100,
                                  seed=seed)
        explanation = explainer.explain(X[0])
        # A constant black-box has nothing to attribute (up to ridge
        # shrinkage numerics).
        assert np.abs(explanation.attributions).max() < 1e-6
        assert explanation.predicted_probability == 0.7
