"""Tests for decision-threshold tuning."""

import numpy as np
import pytest

from repro.core import apply_threshold, tune_threshold
from repro.ml import f1_score


class TestTuneThreshold:
    def test_finds_better_than_default_on_skewed_scores(self):
        # Model is under-confident about positives: optimum below 0.5.
        y = np.asarray([1] * 20 + [0] * 80)
        probabilities = np.concatenate([
            np.linspace(0.30, 0.45, 20),   # positives, all below 0.5
            np.linspace(0.00, 0.25, 80),   # negatives
        ])
        result = tune_threshold(probabilities, y)
        assert result.default_score == 0.0  # nothing predicted at 0.5
        assert result.score == 1.0          # perfectly separable below it
        assert 0.25 < result.threshold < 0.30
        assert result.improvement == pytest.approx(1.0)

    def test_default_kept_when_already_optimal(self):
        y = np.asarray([0, 0, 1, 1])
        probabilities = np.asarray([0.1, 0.2, 0.8, 0.9])
        result = tune_threshold(probabilities, y)
        assert result.score == 1.0
        predictions = apply_threshold(probabilities, result.threshold)
        assert f1_score(y, predictions) == 1.0

    def test_tuned_score_is_achievable(self, rng):
        y = rng.integers(0, 2, 200)
        probabilities = np.clip(y * 0.4 + rng.random(200) * 0.6, 0, 1)
        result = tune_threshold(probabilities, y)
        achieved = f1_score(y, apply_threshold(probabilities,
                                               result.threshold))
        assert achieved == pytest.approx(result.score)
        assert result.score >= result.default_score

    def test_constant_probabilities(self):
        y = np.asarray([0, 1, 1])
        result = tune_threshold(np.full(3, 0.7), y)
        assert result.threshold == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            tune_threshold([0.5], [1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            tune_threshold([], [])

    def test_apply_threshold_binary(self):
        out = apply_threshold([0.2, 0.6, 0.8], 0.5)
        assert out.tolist() == [0, 1, 1]


class TestOnRealMatcher:
    def test_threshold_tuning_on_matcher_probabilities(self,
                                                       small_benchmark):
        from repro.core import AutoMLEM

        train, valid, test = small_benchmark.splits(seed=0)
        matcher = AutoMLEM(n_iterations=3, forest_size=8, seed=0)
        matcher.fit(train, valid)
        valid_probs = matcher.predict_proba(valid)[:, 1]
        result = tune_threshold(valid_probs, valid.labels)
        # Applying the tuned threshold on test must be a valid operating
        # point (never wildly worse than the default).
        test_probs = matcher.predict_proba(test)[:, 1]
        tuned = f1_score(test.labels,
                         apply_threshold(test_probs, result.threshold))
        default = f1_score(test.labels, apply_threshold(test_probs, 0.5))
        assert tuned >= default - 0.15
