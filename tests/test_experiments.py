"""Tests for the experiment harness (ResultTable + cheap runner smoke)."""

import pytest

from repro.experiments import (
    FAST,
    PAPER_NUMBERS,
    ResultTable,
    f1_spread,
    load_bundle,
)
from repro.experiments.configs import ExperimentConfig


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable("T", ["dataset", "f1"])
        table.add_row(dataset="abt_buy", f1=59.234)
        text = table.to_text()
        assert "abt_buy" in text
        assert "59.23" in text

    def test_unknown_column_rejected(self):
        table = ResultTable("T", ["a"])
        with pytest.raises(ValueError, match="unknown columns"):
            table.add_row(b=1)

    def test_column_accessor(self):
        table = ResultTable("T", ["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=3)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2, None]

    def test_column_unknown(self):
        with pytest.raises(KeyError, match="no column"):
            ResultTable("T", ["a"]).column("z")

    def test_missing_cell_renders_dash(self):
        table = ResultTable("T", ["a", "b"])
        table.add_row(a=1)
        assert "-" in table.to_text()

    def test_markdown_shape(self):
        table = ResultTable("My table", ["x", "y"])
        table.add_row(x=1, y=2.5)
        md = table.to_markdown()
        assert md.startswith("### My table")
        assert "| x | y |" in md
        assert "| 1 | 2.5 |" in md

    def test_float_rendering(self):
        table = ResultTable("T", ["v"])
        table.add_row(v=100.0)
        table.add_row(v=0.25)
        table.add_row(v=59.2)
        cells = table.to_text().splitlines()[-3:]
        assert cells[0].strip() == "100"
        assert cells[1].strip() == "0.25"
        assert cells[2].strip() == "59.2"

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            ResultTable("T", [])

    def test_f1_spread(self):
        table = ResultTable("T", ["f1"])
        for value in (40.0, 55.0, 48.0):
            table.add_row(f1=value)
        assert f1_spread(table) == pytest.approx(15.0)


class TestConfigs:
    def test_paper_numbers_cover_all_datasets(self):
        from repro.data.synthetic import ALL_DATASETS
        assert set(PAPER_NUMBERS) == set(ALL_DATASETS)

    def test_paper_table4_average_gap(self):
        # Reproduction note: Table IV's printed summary row (78.1 / 83.9 /
        # +5.8) does not match its own columns — the AutoML-EM column
        # averages 84.46 and the per-row ∆ entries are inconsistent too
        # (Abt-Buy is listed as +5.3 although 59.2 - 43.6 = 15.6).  We pin
        # the column arithmetic; the claimed improvement is ~+6 either way.
        magellan = sum(v["magellan"] for v in PAPER_NUMBERS.values()) / 8
        autoem = sum(v["automl_em"] for v in PAPER_NUMBERS.values()) / 8
        assert magellan == pytest.approx(78.16, abs=0.05)
        assert autoem == pytest.approx(84.46, abs=0.05)
        assert autoem - magellan == pytest.approx(6.3, abs=0.1)

    def test_fast_config_scales_known_datasets(self):
        from repro.data.synthetic import ALL_DATASETS
        assert set(FAST.scales) == set(ALL_DATASETS)


class TestBundles:
    def test_bundle_caching(self):
        b1 = load_bundle("fodors_zagats", FAST)
        b2 = load_bundle("fodors_zagats", FAST)
        assert b1 is b2

    def test_bundle_features_cached_and_consistent(self):
        bundle = load_bundle("fodors_zagats", FAST)
        X_tr, X_va, X_te, generator = bundle.features("magellan")
        assert X_tr.shape[0] == len(bundle.train)
        assert X_va.shape[0] == len(bundle.valid)
        assert X_te.shape[0] == len(bundle.test)
        assert X_tr.shape[1] == generator.num_features
        again = bundle.features("magellan")
        assert again[0] is X_tr

    def test_pool_is_train_plus_valid(self):
        bundle = load_bundle("fodors_zagats", FAST)
        assert len(bundle.pool) == len(bundle.train) + len(bundle.valid)


class TestRunLogRouting:
    def test_run_log_dir_threads_into_matchers(self, tmp_path):
        from repro.automl import read_run_log
        from repro.experiments import runners

        runners.set_run_log_dir(tmp_path)
        try:
            first = runners._automl_em(FAST)
            second = runners._automl_em(FAST)
            assert first.run_log != second.run_log  # numbered per search
            assert first.run_log.parent == tmp_path
            assert first.trial_timeout == FAST.trial_timeout
            # and the log actually gets written by a fit
            import numpy as np
            rng = np.random.default_rng(0)
            n = 80
            y = (rng.random(n) < 0.3).astype(int)
            X = np.column_stack([y + rng.normal(0, 0.2, n), rng.random(n)])
            tiny = runners._automl_em(FAST, n_iterations=2, forest_size=8)
            tiny.fit_matrices(X[:60], y[:60], X[60:], y[60:])
            records = read_run_log(tiny.run_log)
            assert records[-1]["type"] == "summary"
        finally:
            runners.set_run_log_dir(None)

    def test_run_logs_off_by_default(self):
        from repro.experiments import runners

        assert runners._automl_em(FAST).run_log is None


class TestRunnersSmoke:
    """One cheap runner execution checking table structure (full runs are
    the benchmarks' job)."""

    @pytest.fixture(scope="class")
    def tiny_config(self):
        scales = dict(FAST.scales)
        scales.update({"fodors_zagats": 0.3})
        return ExperimentConfig(scales=scales, automl_iterations=3,
                                forest_size=8, generator_seeds=(1,),
                                split_seed=0)

    def test_table4_row_structure(self, tiny_config):
        from repro.experiments import run_table4
        table = run_table4(tiny_config, datasets=("fodors_zagats",))
        assert len(table) == 1
        row = table.rows[0]
        assert row["paper_magellan"] == 100.0
        assert 0 <= row["magellan"] <= 100
        assert 0 <= row["automl_em"] <= 100
        assert row["delta"] == pytest.approx(
            row["automl_em"] - row["magellan"])

    def test_fig9_reports_feature_counts(self, tiny_config):
        from repro.experiments import run_fig9
        table = run_fig9(tiny_config, datasets=("fodors_zagats",))
        row = table.rows[0]
        assert row["autoem_nfeat"] == 84
        assert row["magellan_nfeat"] < 84

    def test_fig12_has_three_variants(self, tiny_config):
        from repro.experiments import run_fig12
        table = run_fig12(tiny_config, datasets=("fodors_zagats",))
        row = table.rows[0]
        assert {"automl_em", "excl_dp", "excl_dp_fp"} <= set(row)
