"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "abt_buy", "/tmp/x", "--scale", "0.2"])
        assert args.dataset == "abt_buy"
        assert args.scale == 0.2

    def test_match_defaults(self):
        args = build_parser().parse_args(["match"])
        assert args.system == "automl-em"
        assert args.budget == 20
        assert args.trial_timeout is None
        assert args.run_log is None
        assert args.resume_from is None

    def test_match_runner_knobs(self):
        args = build_parser().parse_args(
            ["match", "--trial-timeout", "2.5", "--run-log", "/tmp/r.jsonl",
             "--resume-from", "/tmp/prior.jsonl"])
        assert args.trial_timeout == 2.5
        assert args.run_log == "/tmp/r.jsonl"
        assert args.resume_from == "/tmp/prior.jsonl"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "fodors_zagats" in out
        assert "Abt-Buy" in out

    def test_generate_round_trip(self, tmp_path, capsys):
        assert main(["generate", "fodors_zagats", str(tmp_path / "out"),
                     "--scale", "0.2", "--seed", "3"]) == 0
        for name in ("tableA.csv", "tableB.csv", "train.csv", "valid.csv",
                     "test.csv"):
            assert (tmp_path / "out" / name).exists()

    def test_match_on_generated_csvs(self, tmp_path, capsys):
        main(["generate", "fodors_zagats", str(tmp_path / "d"),
              "--scale", "0.3", "--seed", "1"])
        code = main(["match", "--data-dir", str(tmp_path / "d"),
                     "--budget", "3", "--forest-size", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "f1=" in out

    def test_match_writes_run_log(self, tmp_path, capsys):
        from repro.automl import read_run_log

        log_path = tmp_path / "run.jsonl"
        code = main(["match", "--dataset", "fodors_zagats",
                     "--scale", "0.25", "--budget", "3",
                     "--forest-size", "8", "--run-log", str(log_path)])
        assert code == 0
        records = read_run_log(log_path)
        assert sum(1 for r in records if r["type"] == "trial") == 3
        assert records[-1]["type"] == "summary"

    def test_match_magellan_system(self, capsys):
        code = main(["match", "--dataset", "fodors_zagats",
                     "--system", "magellan", "--scale", "0.25",
                     "--forest-size", "8"])
        assert code == 0
        assert "f1=" in capsys.readouterr().out


class TestVersionFlag:
    def test_version_exits_zero_and_prints_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestServeParsers:
    def test_export_defaults(self):
        args = build_parser().parse_args(["export", "/tmp/bundle"])
        assert args.output == "/tmp/bundle"
        assert args.name is None
        assert args.budget == 20
        assert not args.tune_threshold
        assert not args.overwrite

    def test_export_registry_mode(self):
        args = build_parser().parse_args(
            ["export", "/tmp/models", "--name", "prod",
             "--tune-threshold", "--budget", "5"])
        assert args.name == "prod"
        assert args.tune_threshold
        assert args.budget == 5

    def test_predict_args(self):
        args = build_parser().parse_args(
            ["predict", "/tmp/bundle", "--data-dir", "/tmp/d",
             "--batch-size", "128", "--output", "p.csv"])
        assert args.bundle == "/tmp/bundle"
        assert args.pairs == "test.csv"
        assert args.batch_size == 128
        assert args.output == "p.csv"

    def test_serve_batch_args(self):
        args = build_parser().parse_args(
            ["serve-batch", "/tmp/models", "--name", "prod",
             "--block-on", "city", "--min-overlap", "2"])
        assert args.name == "prod"
        assert args.block_on == "city"
        assert args.min_overlap == 2
        assert args.batch_size == 4096

    def test_serve_stream_args(self):
        args = build_parser().parse_args(
            ["serve-stream", "/tmp/models", "--name", "prod",
             "--workers", "8", "--max-queue", "16",
             "--overflow", "reject", "--batch-rows", "32"])
        assert args.workers == 8
        assert args.max_queue == 16
        assert args.overflow == "reject"
        assert args.batch_rows == 32
        assert args.q == 3

    def test_serve_stream_rejects_bad_overflow(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-stream", "/tmp/models", "--overflow", "drop"])


class TestServeCommands:
    def test_export_predict_serve_round_trip(self, tmp_path, capsys):
        main(["generate", "fodors_zagats", str(tmp_path / "d"),
              "--scale", "0.25", "--seed", "1"])
        code = main(["export", str(tmp_path / "models"), "--name", "fz",
                     "--data-dir", str(tmp_path / "d"),
                     "--budget", "2", "--forest-size", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "registered fz v0001" in out
        assert "fingerprint=" in out

        code = main(["predict", str(tmp_path / "models"), "--name", "fz",
                     "--data-dir", str(tmp_path / "d"),
                     "--batch-size", "16",
                     "--output", str(tmp_path / "preds.csv"),
                     "--request-log", str(tmp_path / "req.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted matches" in out
        assert "f1=" in out
        header = (tmp_path / "preds.csv").read_text().splitlines()[0]
        assert header == "ltable_id,rtable_id,probability,prediction"
        from repro.automl import read_run_log

        records = read_run_log(tmp_path / "req.jsonl")
        assert records[0]["type"] == "request"
        assert records[-1]["type"] == "summary"

        code = main(["serve-batch", str(tmp_path / "models"),
                     "--name", "fz", "--data-dir", str(tmp_path / "d"),
                     "--block-on", "name", "--min-overlap", "2",
                     "--output", str(tmp_path / "matches.csv")])
        assert code == 0
        assert "candidates" in capsys.readouterr().out
        assert (tmp_path / "matches.csv").exists()

        code = main(["serve-stream", str(tmp_path / "models"),
                     "--name", "fz", "--data-dir", str(tmp_path / "d"),
                     "--workers", "4", "--batch-rows", "16",
                     "--request-log", str(tmp_path / "stream.jsonl"),
                     "--output", str(tmp_path / "streamed.csv")])
        assert code == 0
        out = capsys.readouterr().out
        assert "workers" in out
        assert "rejected" in out
        header = (tmp_path / "streamed.csv").read_text().splitlines()[0]
        assert header == "ltable_id,rtable_id,probability,prediction"
        from repro.automl import read_run_log

        stream_records = read_run_log(tmp_path / "stream.jsonl")
        kinds = {r["type"] for r in stream_records}
        assert kinds == {"request", "summary"}
        assert stream_records[-1]["type"] == "summary"
        assert stream_records[-1]["errors"] == 0

    def test_export_direct_bundle_path(self, tmp_path, capsys):
        main(["generate", "fodors_zagats", str(tmp_path / "d"),
              "--scale", "0.25", "--seed", "1"])
        code = main(["export", str(tmp_path / "bundle"),
                     "--data-dir", str(tmp_path / "d"),
                     "--budget", "2", "--forest-size", "8",
                     "--tune-threshold"])
        assert code == 0
        assert "wrote bundle" in capsys.readouterr().out
        from repro.serve import ModelBundle

        bundle = ModelBundle.load(tmp_path / "bundle")
        assert bundle.threshold is not None


class TestBlockCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["block"])
        assert args.blocker == "qgram"
        assert args.block_on == "name"
        assert args.min_overlap == 2 and args.q == 3
        assert args.num_perm == 128 and args.bands == 32
        assert args.index_path is None

    def test_invalid_blocker_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["block", "--blocker", "sorted-nbhd"])

    def test_block_on_benchmark_reports_quality(self, capsys):
        code = main(["block", "--dataset", "fodors_zagats",
                     "--scale", "0.3", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "QGramBlocker" in out
        assert "reduction=" in out
        assert "completeness=" in out
        assert "block sizes:" in out

    def test_block_minhash_and_run_log(self, tmp_path, capsys):
        log = tmp_path / "blocking.jsonl"
        code = main(["block", "--blocker", "minhash", "--dataset",
                     "fodors_zagats", "--scale", "0.3",
                     "--num-perm", "32", "--bands", "8",
                     "--run-log", str(log)])
        assert code == 0
        assert "MinHashLSHBlocker" in capsys.readouterr().out
        import json

        records = [json.loads(line)
                   for line in log.read_text().splitlines()]
        assert any(r["type"] == "blocking" and r["dataset"] ==
                   "fodors_zagats" for r in records)

    def test_index_path_persists_and_reuses(self, tmp_path, capsys):
        idx = tmp_path / "standing.idx"
        argv = ["block", "--dataset", "fodors_zagats", "--scale", "0.3",
                "--index-path", str(idx)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "built and saved index" in first
        assert idx.exists()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "reusing persisted index" in second

    def test_data_dir_mode_writes_candidates(self, tmp_path, capsys):
        main(["generate", "fodors_zagats", str(tmp_path / "d"),
              "--scale", "0.3", "--seed", "1"])
        out_csv = tmp_path / "candidates.csv"
        code = main(["block", "--data-dir", str(tmp_path / "d"),
                     "--output", str(out_csv)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "candidate pairs" in out
        assert "completeness=" not in out  # no gold pairs in CSV mode
        assert out_csv.exists()

    def test_blocking_experiment_runs(self, capsys):
        assert main(["experiment", "blocking"]) == 0
        out = capsys.readouterr().out
        assert "qgram" in out and "minhash_lsh" in out
        assert "recall_pct" in out
