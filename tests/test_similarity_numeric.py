"""Unit tests for numeric and boolean similarity measures."""

import math

import pytest

from repro.similarity import (
    absolute_norm,
    boolean_exact_match,
    numeric_exact_match,
    numeric_levenshtein_distance,
    numeric_levenshtein_similarity,
)


class TestNumericExactMatch:
    def test_equal(self):
        assert numeric_exact_match(42.0, 42.0) == 1.0

    def test_not_equal(self):
        assert numeric_exact_match(42.0, 42.5) == 0.0

    def test_nan_propagates(self):
        assert math.isnan(numeric_exact_match(float("nan"), 1.0))


class TestAbsoluteNorm:
    def test_equal_values(self):
        assert absolute_norm(10.0, 10.0) == 1.0

    def test_both_zero(self):
        assert absolute_norm(0.0, 0.0) == 1.0

    def test_known_value(self):
        # 1 - |10-5|/10 = 0.5
        assert absolute_norm(10.0, 5.0) == 0.5

    def test_symmetry(self):
        assert absolute_norm(3.0, 7.0) == absolute_norm(7.0, 3.0)

    def test_clipped_at_zero(self):
        assert absolute_norm(1.0, -100.0) == 0.0

    def test_nan_propagates(self):
        assert math.isnan(absolute_norm(1.0, float("nan")))


class TestNumericLevenshtein:
    def test_integer_rendering(self):
        # 1999 vs 1998: one digit edit.
        assert numeric_levenshtein_distance(1999.0, 1998.0) == 1.0

    def test_integral_floats_render_without_decimal(self):
        assert numeric_levenshtein_distance(5.0, 5.0) == 0.0

    def test_similarity_bounds(self):
        assert 0.0 <= numeric_levenshtein_similarity(19.99, 24.99) <= 1.0

    def test_nan(self):
        assert math.isnan(numeric_levenshtein_similarity(float("nan"), 2.0))


class TestBooleanExactMatch:
    @pytest.mark.parametrize("v1,v2,expected", [
        (True, True, 1.0), (False, False, 1.0),
        (True, False, 0.0), (False, True, 0.0),
    ])
    def test_truth_table(self, v1, v2, expected):
        assert boolean_exact_match(v1, v2) == expected

    def test_missing_is_nan(self):
        assert math.isnan(boolean_exact_match(None, True))
        assert math.isnan(boolean_exact_match(False, None))
