"""Tests for imputation, scaling, balancing and the chi2 shift."""

import numpy as np
import pytest

from repro.ml import (
    IdentityTransform,
    MinMaxScaler,
    NonNegativeShift,
    Normalizer,
    RandomOverSampler,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
    balanced_sample_weight,
    compute_class_weight,
)


@pytest.fixture()
def matrix_with_nan():
    return np.asarray([[1.0, np.nan, 3.0],
                       [2.0, 4.0, np.nan],
                       [3.0, 6.0, 9.0]])


class TestSimpleImputer:
    def test_mean_strategy(self, matrix_with_nan):
        out = SimpleImputer("mean").fit_transform(matrix_with_nan)
        assert out[0, 1] == pytest.approx(5.0)
        assert out[1, 2] == pytest.approx(6.0)
        assert not np.isnan(out).any()

    def test_median_strategy(self):
        X = np.asarray([[1.0], [2.0], [100.0], [np.nan]])
        out = SimpleImputer("median").fit_transform(X)
        assert out[3, 0] == 2.0

    def test_constant_strategy(self, matrix_with_nan):
        out = SimpleImputer("constant", fill_value=-1.0).fit_transform(
            matrix_with_nan)
        assert out[0, 1] == -1.0

    def test_all_missing_column_falls_back(self):
        X = np.asarray([[np.nan], [np.nan]])
        out = SimpleImputer("mean", fill_value=0.0).fit_transform(X)
        assert np.all(out == 0.0)

    def test_transform_uses_train_statistics(self, matrix_with_nan):
        imputer = SimpleImputer("mean").fit(matrix_with_nan)
        fresh = np.asarray([[np.nan, np.nan, np.nan]])
        out = imputer.transform(fresh)
        assert out[0, 0] == pytest.approx(2.0)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            SimpleImputer("mode")


class TestScalers:
    def test_standard_scaler_zero_mean_unit_var(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_column(self):
        X = np.ones((10, 2))
        out = StandardScaler().fit_transform(X)
        assert not np.isnan(out).any()

    def test_minmax_range(self, rng):
        X = rng.normal(size=(50, 3))
        out = MinMaxScaler().fit_transform(X)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_minmax_transform_can_exceed_range(self):
        scaler = MinMaxScaler().fit(np.asarray([[0.0], [1.0]]))
        assert scaler.transform(np.asarray([[2.0]]))[0, 0] == 2.0

    def test_robust_scaler_centers_on_median(self, rng):
        X = rng.normal(size=(201, 2))
        out = RobustScaler().fit_transform(X)
        assert np.allclose(np.median(out, axis=0), 0.0, atol=1e-9)

    def test_robust_scaler_outlier_insensitive(self):
        X = np.concatenate([np.linspace(0, 1, 99), [1000.0]]).reshape(-1, 1)
        robust = RobustScaler().fit(X)
        standard = StandardScaler().fit(X)
        # The outlier inflates std dramatically but not the IQR.
        assert robust.scale_[0] < standard.scale_[0]

    def test_robust_scaler_quantile_validation(self):
        with pytest.raises(ValueError, match="q_min"):
            RobustScaler(q_min=-5)
        with pytest.raises(ValueError, match="q_max"):
            RobustScaler(q_min=60, q_max=50)

    def test_normalizer_unit_rows(self, rng):
        X = rng.normal(size=(20, 5))
        out = Normalizer().fit_transform(X)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_normalizer_zero_row(self):
        out = Normalizer().fit_transform(np.zeros((2, 3)))
        assert not np.isnan(out).any()

    def test_identity(self, rng):
        X = rng.normal(size=(5, 2))
        np.testing.assert_array_equal(IdentityTransform().fit_transform(X),
                                      X)


class TestNonNegativeShift:
    def test_output_non_negative(self, rng):
        X = rng.normal(size=(30, 4))
        out = NonNegativeShift().fit_transform(X)
        assert np.all(out >= 0)

    def test_new_lower_values_clip(self):
        shifter = NonNegativeShift().fit(np.asarray([[0.0], [2.0]]))
        assert shifter.transform(np.asarray([[-5.0]]))[0, 0] == 0.0


class TestBalancing:
    def test_compute_class_weight(self):
        # n / (k * count): 4 / (2*3) and 4 / (2*1).
        weights = compute_class_weight([0, 0, 0, 1])
        assert weights[0] == pytest.approx(2 / 3)
        assert weights[1] == pytest.approx(2.0)

    def test_balanced_sample_weight_sums_equal_per_class(self):
        y = np.asarray([0] * 90 + [1] * 10)
        weights = balanced_sample_weight(y)
        assert weights[y == 0].sum() == pytest.approx(weights[y == 1].sum())

    def test_oversampler_balances(self, rng):
        X = rng.normal(size=(100, 2))
        y = np.asarray([0] * 90 + [1] * 10)
        X_out, y_out = RandomOverSampler(random_state=0).fit_resample(X, y)
        values, counts = np.unique(y_out, return_counts=True)
        assert counts[0] == counts[1] == 90

    def test_oversampler_only_duplicates_minority(self, rng):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.asarray([0] * 15 + [1] * 5)
        X_out, y_out = RandomOverSampler(random_state=1).fit_resample(X, y)
        minority_values = set(X_out[y_out == 1, 0].tolist())
        assert minority_values <= set(X[y == 1, 0].tolist())
