"""Unit tests for the resolve layer's decision and clustering cores."""

import pytest

from repro.resolve import (
    ConnectedComponents,
    CorrelationClustering,
    MatchDecision,
    decisions_fingerprint,
    entity_id_for,
    gold_decisions,
    node_key,
    order_key,
    stable_hash,
)


def D(left, right, score=0.9, matched=True):
    return MatchDecision(node_key(*left), node_key(*right), score, matched)


class TestDecisions:
    def test_node_key_requires_side(self):
        with pytest.raises(ValueError, match="side"):
            node_key("", 3)

    def test_order_key_totals_mixed_id_types(self):
        # int and str ids would not compare directly; order_key must
        # still induce one total, permutation-independent order
        nodes = [("a", 10), ("a", "10"), ("b", 2), ("a", 2)]
        ordered = sorted(nodes, key=order_key)
        assert sorted(reversed(nodes), key=order_key) == ordered
        assert ordered[0][0] == "a" and ordered[-1] == ("b", 2)
        # side dominates; within a side the type name breaks str(id) ties
        assert order_key(("a", 10)) < order_key(("a", "10"))

    def test_entity_id_format(self):
        assert entity_id_for(("a", 7)) == "a:7"
        assert entity_id_for(("b", "x1")) == "b:x1"

    def test_stable_hash_is_process_stable(self):
        # pinned digests: these must never change across runs/processes
        assert stable_hash("a:1") == stable_hash("a:1")
        assert stable_hash("a:1") != stable_hash("a:2")
        assert isinstance(stable_hash(("a", 1)), int)

    def test_score_bounds_and_self_edges_rejected(self):
        with pytest.raises(ValueError, match="score"):
            D(("a", 1), ("b", 1), score=1.5)
        with pytest.raises(ValueError, match="self-edge"):
            D(("a", 1), ("a", 1))

    def test_key_and_equality_are_endpoint_order_free(self):
        forward = D(("a", 1), ("b", 2))
        backward = D(("b", 2), ("a", 1))
        assert forward.key == backward.key
        assert forward.normalized() == backward.normalized()
        assert forward.normalized() is forward  # already canonical

    def test_fingerprint_ignores_order_and_direction(self):
        batch = [D(("a", 1), ("b", 2)), D(("a", 3), ("b", 4), 0.2, False)]
        flipped = [D(("b", 4), ("a", 3), 0.2, False),
                   D(("b", 2), ("a", 1))]
        assert decisions_fingerprint(batch) == \
            decisions_fingerprint(flipped)
        assert decisions_fingerprint(batch) != \
            decisions_fingerprint(batch[:1])

    def test_gold_decisions_oracle(self, small_benchmark):
        _, _, test = small_benchmark.splits(seed=0)
        decisions = gold_decisions(test)
        assert len(decisions) == len(test)
        assert all(d.score in (0.0, 1.0) for d in decisions)
        assert all(d.matched == bool(d.score) for d in decisions)

    def test_gold_decisions_rejects_unlabeled(self, small_benchmark):
        from repro.data.pairs import PairSet, RecordPair

        table = small_benchmark.table_a
        unlabeled = PairSet(table, small_benchmark.table_b,
                            [RecordPair(table[0],
                                        small_benchmark.table_b[0])])
        with pytest.raises(ValueError, match="gold label"):
            gold_decisions(unlabeled)


class TestConnectedComponents:
    def test_transitive_closure(self):
        cc = ConnectedComponents()
        cc.add_many([D(("a", 1), ("b", 1)), D(("b", 1), ("a", 2))])
        assert cc.canonical(("a", 2)) == ("a", 1)
        assert cc.component_size(("b", 1)) == 3
        assert cc.n_components == 1

    def test_negative_decisions_register_but_never_merge(self):
        cc = ConnectedComponents()
        assert cc.add(D(("a", 1), ("b", 1), 0.1, False)) is False
        assert ("a", 1) in cc and ("b", 1) in cc
        assert cc.n_components == 2

    def test_threshold_gates_positive_edges(self):
        cc = ConnectedComponents(threshold=0.8)
        assert cc.add(D(("a", 1), ("b", 1), 0.7, True)) is False
        assert cc.add(D(("a", 1), ("b", 1), 0.9, True)) is True
        with pytest.raises(ValueError, match="threshold"):
            ConnectedComponents(threshold=1.5)

    def test_components_view_is_insertion_order_free(self):
        batch = [D(("a", 1), ("b", 1)), D(("a", 2), ("b", 2)),
                 D(("b", 1), ("a", 2)), D(("a", 3), ("b", 9), 0.1, False)]
        forward, backward = ConnectedComponents(), ConnectedComponents()
        forward.add_many(batch)
        backward.add_many(list(reversed(batch)))
        assert forward.components() == backward.components()
        assert list(forward.components()) == \
            sorted(forward.components(), key=order_key)

    def test_churn_accounting(self):
        cc = ConnectedComponents()
        cc.add(D(("a", 1), ("b", 1)))   # attachment (both singletons)
        cc.add(D(("a", 2), ("b", 2)))   # attachment
        cc.add(D(("a", 1), ("a", 2)))   # merge of two real entities
        cc.add(D(("a", 1), ("b", 1)))   # no-op, already joined
        assert cc.n_attachments == 2
        assert cc.n_entity_merges == 1
        assert cc.n_unions == 3
        assert cc.stats()["entity_merge_rate"] == pytest.approx(1 / 3)

    def test_members_and_sizes(self):
        cc = ConnectedComponents()
        cc.add_many([D(("a", 1), ("b", 1)), D(("a", 5), ("b", 9),
                                              0.2, False)])
        assert cc.members(("b", 1)) == (("a", 1), ("b", 1))
        assert sorted(cc.sizes()) == [1, 1, 2]


class TestCorrelationClustering:
    def test_splits_component_with_internal_negative(self):
        # a1 - b1 (positive), b1 - a2 (positive), a1 - a2 (negative):
        # transitive closure over-merges; the pivot pass must split.
        decisions = [D(("a", 1), ("b", 1)), D(("b", 1), ("a", 2)),
                     D(("a", 1), ("a", 2), 0.05, False)]
        cc = ConnectedComponents()
        cc.add_many(decisions)
        assert cc.n_components == 1
        refined = CorrelationClustering(seed=0).refine(cc.components(),
                                                       decisions)
        assert len(refined) == 2
        members = sorted(refined.values())
        assert all(len(cluster) <= 2 for cluster in members)
        # every cluster is keyed by its own minimum member
        assert all(key == cluster[0] for key, cluster in refined.items())

    def test_clean_components_pass_through_untouched(self):
        decisions = [D(("a", 1), ("b", 1)), D(("b", 1), ("a", 2))]
        cc = ConnectedComponents()
        cc.add_many(decisions)
        refined = CorrelationClustering().refine(cc.components(),
                                                 decisions)
        assert refined == cc.components()

    def test_min_component_leaves_pairs_alone(self):
        decisions = [D(("a", 1), ("b", 1)),
                     D(("a", 1), ("b", 1), 0.1, False)]
        cc = ConnectedComponents()
        cc.add_many(decisions)
        refined = CorrelationClustering(min_component=3).refine(
            cc.components(), decisions)
        assert refined == cc.components()

    def test_negative_threshold_ignores_borderline_negatives(self):
        decisions = [D(("a", 1), ("b", 1)), D(("b", 1), ("a", 2)),
                     D(("a", 1), ("a", 2), 0.45, False)]
        cc = ConnectedComponents()
        cc.add_many(decisions)
        strict = CorrelationClustering(negative_threshold=0.3)
        assert strict.refine(cc.components(), decisions) == \
            cc.components()
        loose = CorrelationClustering(negative_threshold=0.6)
        assert len(loose.refine(cc.components(), decisions)) == 2

    def test_refinement_is_seed_deterministic(self):
        decisions = [D(("a", i), ("b", i)) for i in range(6)]
        decisions += [D(("b", i), ("a", i + 1)) for i in range(5)]
        decisions += [D(("a", 0), ("b", 5), 0.02, False),
                      D(("a", 2), ("b", 4), 0.03, False)]
        cc = ConnectedComponents()
        cc.add_many(decisions)
        first = CorrelationClustering(seed=11).refine(cc.components(),
                                                      decisions)
        second = CorrelationClustering(seed=11).refine(cc.components(),
                                                       decisions)
        assert first == second

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="negative_threshold"):
            CorrelationClustering(negative_threshold=2.0)
        with pytest.raises(ValueError, match="min_component"):
            CorrelationClustering(min_component=1)
