"""Tests for reference profiles (Reservoir, FeatureProfile, accumulator)."""

import numpy as np
import pytest

from repro.features import (
    FeatureProfile,
    ProfileAccumulator,
    ReferenceProfile,
    Reservoir,
)


class TestReservoir:
    def test_fills_then_caps(self):
        reservoir = Reservoir(8, seed=0)
        reservoir.update(np.arange(5, dtype=float))
        assert len(reservoir) == 5
        reservoir.update(np.arange(100, dtype=float))
        assert len(reservoir) == 8
        assert reservoir.n_seen == 105

    def test_deterministic_for_seed_and_stream(self):
        def run():
            reservoir = Reservoir(16, seed=42)
            for start in range(0, 200, 7):
                reservoir.update(np.arange(start, start + 7, dtype=float))
            return reservoir.sample()

        assert np.array_equal(run(), run())

    def test_batched_equals_elementwise(self):
        """Vectorized Algorithm R == the sequential algorithm it models."""
        values = np.random.default_rng(1).normal(size=300)
        batched = Reservoir(10, seed=5)
        batched.update(values)
        one_by_one = Reservoir(10, seed=5)
        for value in values:
            one_by_one.update(np.array([value]))
        assert np.array_equal(batched.sample(), one_by_one.sample())

    def test_sample_is_roughly_uniform(self):
        reservoir = Reservoir(200, seed=0)
        reservoir.update(np.arange(10_000, dtype=float))
        # A uniform sample of [0, 10k) has mean ~5k; allow a wide band.
        assert 3_500 < reservoir.sample().mean() < 6_500

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="size"):
            Reservoir(0)


class TestFeatureProfile:
    def test_bin_counts_align_with_edges(self):
        profile = FeatureProfile("f", [0.0, 1.0, 2.0, 3.0],
                                 [1 / 3, 1 / 3, 1 / 3],
                                 null_rate=0.0, mean=1.5, std=1.0, n=3)
        counts = profile.bin_counts(np.array([0.5, 1.5, 2.5]))
        assert counts.tolist() == [1, 1, 1]

    def test_outer_bins_absorb_out_of_range(self):
        profile = FeatureProfile("f", [0.0, 1.0, 2.0, 3.0],
                                 [1 / 3, 1 / 3, 1 / 3],
                                 null_rate=0.0, mean=1.5, std=1.0, n=3)
        counts = profile.bin_counts(np.array([-100.0, 100.0]))
        assert counts.tolist() == [1, 0, 1]

    def test_round_trip(self):
        profile = FeatureProfile("f", [0.0, 0.5, 1.0], [0.4, 0.6],
                                 null_rate=0.1, mean=0.5, std=0.2, n=50,
                                 sample=[0.1, 0.9])
        assert FeatureProfile.from_dict(profile.as_dict()) == profile


class TestProfileAccumulator:
    def _accumulate(self, seed=0, batch=50):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(200, 3))
        X[rng.random(200) < 0.2, 0] = np.nan  # feature 0 has nulls
        probs = rng.random(200)
        preds = (probs > 0.7).astype(int)
        acc = ProfileAccumulator(["a", "b", "c"], seed=seed)
        for start in range(0, 200, batch):
            stop = start + batch
            acc.update(X[start:stop], probabilities=probs[start:stop],
                       predictions=preds[start:stop])
        return acc.finalize()

    def test_profile_contents(self):
        reference = self._accumulate()
        assert reference.n_rows == 200
        assert reference.feature_names == ["a", "b", "c"]
        assert reference.score is not None
        assert reference.score.name == "__score__"
        assert 0.0 < reference.match_rate < 1.0
        drifty = reference.feature("a")
        assert 0.1 < drifty.null_rate < 0.35
        assert reference.feature("b").null_rate == 0.0
        assert sum(drifty.bin_fractions) == pytest.approx(1.0)
        assert len(drifty.bin_edges) == len(drifty.bin_fractions) + 1

    def test_batching_does_not_change_exact_state(self):
        small = self._accumulate(batch=13)
        large = self._accumulate(batch=200)
        for a, b in zip(small.features, large.features):
            assert a.null_rate == b.null_rate
            assert a.n == b.n
            assert a.mean == pytest.approx(b.mean)
            assert a.std == pytest.approx(b.std)

    def test_deterministic_given_seed(self):
        assert self._accumulate().as_dict() == self._accumulate().as_dict()

    def test_json_round_trip(self):
        reference = self._accumulate()
        payload = reference.as_dict()
        restored = ReferenceProfile.from_dict(payload)
        assert restored.as_dict() == payload

    def test_score_side_optional(self):
        acc = ProfileAccumulator(["a"])
        acc.update(np.ones((10, 1)))
        reference = acc.finalize()
        assert reference.score is None
        assert reference.match_rate == 0.0

    def test_all_null_column_yields_degenerate_bin(self):
        acc = ProfileAccumulator(["a"])
        acc.update(np.full((30, 1), np.nan))
        profile = acc.finalize().feature("a")
        assert profile.null_rate == 1.0
        assert profile.bin_fractions == [1.0]

    def test_constant_column_is_well_formed(self):
        acc = ProfileAccumulator(["a"])
        acc.update(np.full((30, 1), 2.5))
        profile = acc.finalize().feature("a")
        assert sum(profile.bin_fractions) == pytest.approx(1.0)
        counts = profile.bin_counts(np.full(5, 2.5))
        assert counts.sum() == 5

    def test_shape_mismatch_raises(self):
        acc = ProfileAccumulator(["a", "b"])
        with pytest.raises(ValueError, match="matrix"):
            acc.update(np.ones((4, 3)))

    def test_unknown_feature_raises(self):
        reference = self._accumulate()
        with pytest.raises(KeyError, match="ghost"):
            reference.feature("ghost")

    def test_empty_feature_names_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ProfileAccumulator([])
