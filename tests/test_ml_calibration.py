"""Tests for Platt calibration and the expected calibration error."""

import numpy as np
import pytest

from repro.ml import PlattCalibrator, expected_calibration_error


@pytest.fixture()
def miscalibrated(rng):
    """Scores correlate with the label but on a stretched scale."""
    n = 600
    latent = rng.normal(size=n)
    y = (latent + 0.3 * rng.normal(size=n) > 0).astype(int)
    scores = 5.0 * latent  # overconfident raw margins
    return scores, y


class TestPlatt:
    def test_probabilities_ordered_with_scores(self, miscalibrated):
        scores, y = miscalibrated
        calibrator = PlattCalibrator().fit(scores, y)
        probs = calibrator.predict_proba(scores)[:, 1]
        order_scores = np.argsort(scores)
        ordered = probs[order_scores]
        assert all(b >= a - 1e-12 for a, b in zip(ordered, ordered[1:]))

    def test_reduces_ece_of_squashed_margins(self, miscalibrated):
        scores, y = miscalibrated
        naive = 1.0 / (1.0 + np.exp(-scores))
        calibrator = PlattCalibrator().fit(scores, y)
        calibrated = calibrator.predict_proba(scores)[:, 1]
        assert expected_calibration_error(y, calibrated) <= \
            expected_calibration_error(y, naive) + 1e-6

    def test_proba_rows_sum_to_one(self, miscalibrated):
        scores, y = miscalibrated
        probs = PlattCalibrator().fit(scores, y).predict_proba(scores)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            PlattCalibrator().fit([0.1, 0.9], [1, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            PlattCalibrator().fit([0.1], [1, 0])


class TestECE:
    def test_perfectly_calibrated_low_ece(self, rng):
        n = 5000
        probs = rng.random(n)
        y = (rng.random(n) < probs).astype(int)
        assert expected_calibration_error(y, probs, n_bins=10) < 0.05

    def test_anticalibrated_high_ece(self):
        y = np.asarray([0] * 50 + [1] * 50)
        probs = np.concatenate([np.full(50, 0.95), np.full(50, 0.05)])
        assert expected_calibration_error(y, probs) > 0.5

    def test_constant_probability(self):
        y = np.asarray([0, 1, 0, 1])
        assert expected_calibration_error(y, np.full(4, 0.5)) == \
            pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_bins"):
            expected_calibration_error([1], [0.5], n_bins=0)
        with pytest.raises(ValueError, match="shape mismatch"):
            expected_calibration_error([1, 0], [0.5])
