"""Tests for the active-learning query strategies."""

import numpy as np
import pytest

from repro.core import (
    CommitteeStrategy,
    EntropyStrategy,
    MarginStrategy,
    QueryStrategy,
    RandomStrategy,
    UncertaintyStrategy,
    make_strategy,
)
from repro.ml import RandomForestClassifier


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 5))
    y = (X[:, 0] + 0.3 * rng.normal(size=300) > 0).astype(int)
    model = RandomForestClassifier(n_estimators=16, random_state=0)
    model.fit(X, y)
    pool = rng.normal(size=(120, 5))
    return model, pool


ALL_NAMES = ("uncertainty", "margin", "entropy", "committee", "random")


class TestFactory:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_make_by_name(self, name):
        strategy = make_strategy(name)
        assert isinstance(strategy, QueryStrategy)
        assert strategy.name == name

    def test_instance_passthrough(self):
        strategy = MarginStrategy()
        assert make_strategy(strategy) is strategy

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown query strategy"):
            make_strategy("oracle")


class TestSelection:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_selects_requested_count(self, name, fitted_model, rng):
        model, pool = fitted_model
        chosen = make_strategy(name).select(model, pool, 10, rng)
        assert chosen.shape == (10,)
        assert len(set(chosen.tolist())) == 10

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_batch_capped(self, name, fitted_model, rng):
        model, pool = fitted_model
        chosen = make_strategy(name).select(model, pool, 10_000, rng)
        assert len(chosen) == len(pool)

    def test_zero_batch(self, fitted_model, rng):
        model, pool = fitted_model
        assert len(UncertaintyStrategy().select(model, pool, 0, rng)) == 0

    def test_negative_batch(self, fitted_model, rng):
        model, pool = fitted_model
        with pytest.raises(ValueError, match="batch_size"):
            UncertaintyStrategy().select(model, pool, -1, rng)

    def test_uncertainty_picks_boundary_points(self, fitted_model, rng):
        model, pool = fitted_model
        chosen = UncertaintyStrategy().select(model, pool, 15, rng)
        votes = model.vote_fraction(pool)
        assert votes[chosen].mean() < votes.mean()

    def test_margin_agrees_with_uncertainty_direction(self, fitted_model,
                                                      rng):
        model, pool = fitted_model
        chosen = MarginStrategy().select(model, pool, 15, rng)
        probs = model.predict_proba(pool)
        margins = np.abs(probs[:, 1] - probs[:, 0])
        assert margins[chosen].mean() < margins.mean()

    def test_entropy_prefers_high_entropy(self, fitted_model, rng):
        model, pool = fitted_model
        chosen = EntropyStrategy().select(model, pool, 15, rng)
        probs = np.maximum(model.predict_proba(pool), 1e-12)
        entropy = -(probs * np.log(probs)).sum(axis=1)
        assert entropy[chosen].mean() > entropy.mean()

    def test_committee_scores_bounded(self, fitted_model, rng):
        model, pool = fitted_model
        scores = CommitteeStrategy(n_committees=4).scores(model, pool, rng)
        assert np.all(scores >= -1e-12)
        assert np.all(scores <= np.log(2) + 1e-9)

    def test_committee_validation(self):
        with pytest.raises(ValueError, match="n_committees"):
            CommitteeStrategy(n_committees=1)

    def test_random_depends_on_rng_only(self, fitted_model):
        model, pool = fitted_model
        r1 = RandomStrategy().select(model, pool, 10,
                                     np.random.default_rng(1))
        r2 = RandomStrategy().select(model, pool, 10,
                                     np.random.default_rng(1))
        np.testing.assert_array_equal(r1, r2)


class TestInActiveLoop:
    def test_strategy_reaches_active_loop(self):
        from repro.core import AutoMLEMActive
        active = AutoMLEMActive(query_strategy="committee")
        assert active.query_strategy.name == "committee"

    def test_unknown_strategy_rejected_early(self):
        from repro.core import AutoMLEMActive
        with pytest.raises(ValueError, match="unknown query strategy"):
            AutoMLEMActive(query_strategy="psychic")
