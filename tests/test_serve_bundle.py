"""Tests for ModelBundle serialization and the ModelRegistry."""

import json

import numpy as np
import pytest

from repro.serve import (
    FORMAT_VERSION,
    BundleError,
    BundleIntegrityError,
    ModelBundle,
    ModelRegistry,
    SchemaMismatchError,
)
from repro.serve.bundle import MANIFEST_NAME, PIPELINE_NAME


@pytest.fixture()
def bundle(trained_em):
    matcher, _, _, test = trained_em
    return matcher.export_bundle(metrics=matcher.evaluate(test))


class TestRoundTrip:
    def test_save_load_predict_bit_matches(self, trained_em, bundle,
                                           tmp_path):
        matcher, _, _, test = trained_em
        bundle.save(tmp_path / "b")
        loaded = ModelBundle.load(tmp_path / "b")
        X = matcher.feature_generator_.transform(test)
        assert np.array_equal(loaded.predict(X), matcher.predict(test))
        assert np.array_equal(loaded.predict_proba(X),
                              matcher.predict_proba(test)[:, 1])

    def test_round_trip_preserves_bundle_fields(self, bundle, tmp_path):
        bundle.save(tmp_path / "b")
        loaded = ModelBundle.load(tmp_path / "b")
        assert loaded.plan == bundle.plan
        assert loaded.schema == bundle.schema
        assert loaded.threshold == bundle.threshold
        assert loaded.sequence_max_chars == bundle.sequence_max_chars
        assert loaded.metadata == bundle.metadata
        assert loaded.fingerprint == bundle.fingerprint

    def test_manifest_is_versioned_and_checksummed(self, bundle, tmp_path):
        bundle.save(tmp_path / "b")
        manifest = json.loads(
            (tmp_path / "b" / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert PIPELINE_NAME in manifest["checksums"]
        assert "fingerprint" in manifest
        assert manifest["metadata"]["best_config"]

    def test_export_records_metrics_and_provenance(self, trained_em,
                                                   bundle):
        matcher = trained_em[0]
        assert bundle.metadata["metrics"]["f1"] >= 0.0
        assert bundle.metadata["search"] == matcher.search
        assert bundle.metadata["best_score"] == matcher.best_score_

    def test_save_refuses_overwrite_by_default(self, bundle, tmp_path):
        bundle.save(tmp_path / "b")
        with pytest.raises(FileExistsError):
            bundle.save(tmp_path / "b")
        bundle.save(tmp_path / "b", overwrite=True)
        assert ModelBundle.load(tmp_path / "b").plan == bundle.plan

    def test_overwrite_refuses_non_bundle_directory(self, bundle, tmp_path):
        target = tmp_path / "not-a-bundle"
        target.mkdir()
        (target / "precious.txt").write_text("user data")
        with pytest.raises(BundleError, match="does not look like"):
            bundle.save(target, overwrite=True)


class TestIntegrity:
    def test_corrupted_pipeline_raises(self, bundle, tmp_path):
        bundle.save(tmp_path / "b")
        pipeline = tmp_path / "b" / PIPELINE_NAME
        pipeline.write_bytes(pipeline.read_bytes()[:-1] + b"\x00")
        with pytest.raises(BundleIntegrityError, match="checksum"):
            ModelBundle.load(tmp_path / "b")

    def test_edited_manifest_raises(self, bundle, tmp_path):
        bundle.save(tmp_path / "b")
        manifest_path = tmp_path / "b" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["threshold"] = 0.99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(BundleIntegrityError, match="fingerprint"):
            ModelBundle.load(tmp_path / "b")

    def test_unsupported_format_version_raises(self, bundle, tmp_path):
        bundle.save(tmp_path / "b")
        manifest_path = tmp_path / "b" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="format_version"):
            ModelBundle.load(tmp_path / "b")

    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(BundleError, match="not a model bundle"):
            ModelBundle.load(tmp_path / "empty")


class TestSchema:
    def test_check_schema_accepts_training_tables(self, trained_em,
                                                  small_benchmark, bundle):
        bundle.check_schema(small_benchmark.table_a,
                            small_benchmark.table_b)

    def test_check_schema_rejects_missing_attribute(self, small_benchmark,
                                                    bundle):
        kept = [c for c in small_benchmark.table_a.columns
                if c != bundle.plan[0][0]]
        narrowed = small_benchmark.table_a.project(kept)
        with pytest.raises(SchemaMismatchError, match="lacks attributes"):
            bundle.check_schema(narrowed)

    def test_plan_must_be_covered_by_schema(self, bundle):
        with pytest.raises(BundleError, match="absent from the recorded"):
            ModelBundle(bundle.predictor, plan=[("ghost", "jaccard_space")],
                        schema={"name": "WORDS_1_5"})

    def test_empty_plan_rejected(self, bundle):
        with pytest.raises(BundleError, match="non-empty"):
            ModelBundle(bundle.predictor, plan=[], schema={})


class TestThreshold:
    def test_native_threshold_matches_predict(self, trained_em, bundle):
        matcher, _, _, test = trained_em
        X = matcher.feature_generator_.transform(test)
        assert bundle.threshold is None
        assert np.array_equal(bundle.predict(X), matcher.predict(test))

    def test_explicit_threshold_applied(self, trained_em):
        matcher, _, _, test = trained_em
        X = matcher.feature_generator_.transform(test)
        eager = matcher.export_bundle(threshold=0.0)
        assert (eager.predict(X) == 1).all()
        strict = matcher.export_bundle(threshold=1.01)
        assert (strict.predict(X) == 0).all()

    def test_threshold_survives_round_trip(self, trained_em, tmp_path):
        matcher = trained_em[0]
        matcher.export_bundle(tmp_path / "b", threshold=0.25)
        assert ModelBundle.load(tmp_path / "b").threshold == 0.25


class TestExportGuards:
    def test_unfitted_matcher_cannot_export(self):
        from repro.core import AutoMLEM

        with pytest.raises(RuntimeError, match="not fitted"):
            AutoMLEM().export_bundle()

    def test_matrix_fit_cannot_export(self, trained_em):
        from repro.core import AutoMLEM

        matcher, train, valid, _ = trained_em
        X_tr = matcher.feature_generator_.transform(train)
        X_va = matcher.feature_generator_.transform(valid)
        matrix_fit = AutoMLEM(n_iterations=1, forest_size=4)
        matrix_fit.fit_matrices(X_tr, train.labels, X_va, valid.labels)
        with pytest.raises(RuntimeError, match="fitted from matrices"):
            matrix_fit.export_bundle()


class TestRegistry:
    def test_register_get_latest(self, bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        assert registry.register(bundle, "model") == "v0001"
        assert registry.register(bundle, "model") == "v0002"
        assert registry.latest("model") == "v0002"
        assert registry.get("model").fingerprint == bundle.fingerprint
        assert registry.get("model", "v0001").plan == bundle.plan

    def test_list_models_and_versions(self, bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.register(bundle, "alpha")
        registry.register(bundle, "beta")
        registry.register(bundle, "beta")
        assert registry.list() == {"alpha": ["v0001"],
                                   "beta": ["v0001", "v0002"]}
        assert "alpha" in registry
        assert "gamma" not in registry

    def test_missing_model_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(KeyError, match="no model"):
            registry.latest("ghost")
        with pytest.raises(KeyError):
            registry.get("ghost")

    def test_invalid_names_rejected(self, bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        for name in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="invalid model name"):
                registry.register(bundle, name)

    def test_latest_survives_missing_pointer_file(self, bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.register(bundle, "model")
        registry.register(bundle, "model")
        (tmp_path / "reg" / "model" / "LATEST").unlink()
        assert registry.latest("model") == "v0002"

    def test_versions_lists_oldest_first(self, bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        for _ in range(3):
            registry.register(bundle, "model")
        assert registry.versions("model") == ["v0001", "v0002", "v0003"]
        with pytest.raises(KeyError, match="no model"):
            registry.versions("ghost")

    def test_promote_flips_latest_atomically(self, bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.register(bundle, "model")
        registry.register(bundle, "model")
        assert registry.latest("model") == "v0002"
        assert registry.promote("model", "v0001") == "v0001"
        assert registry.latest("model") == "v0001"
        with pytest.raises(KeyError, match="no bundle"):
            registry.promote("model", "v9999")

    def test_stale_pointer_is_rewritten_on_disk(self, bundle, tmp_path):
        """latest() self-heals: a pointer at a deleted version falls
        back to a directory scan AND rewrites LATEST, so only the first
        reader pays for the scan."""
        import shutil

        registry = ModelRegistry(tmp_path / "reg")
        registry.register(bundle, "model")
        registry.register(bundle, "model")
        shutil.rmtree(tmp_path / "reg" / "model" / "v0002")
        pointer = tmp_path / "reg" / "model" / "LATEST"
        assert pointer.read_text().strip() == "v0002"  # now stale
        assert registry.latest("model") == "v0001"
        assert pointer.read_text().strip() == "v0001"  # healed

    def test_garbage_pointer_contents_also_heal(self, bundle, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.register(bundle, "model")
        pointer = tmp_path / "reg" / "model" / "LATEST"
        pointer.write_text("not-a-version\n")
        assert registry.latest("model") == "v0001"
        assert pointer.read_text().strip() == "v0001"


class TestReferenceProfile:
    def test_export_embeds_profile_in_manifest(self, trained_em, tmp_path):
        matcher, _, _, _ = trained_em
        matcher.export_bundle(tmp_path / "b")
        manifest = json.loads(
            (tmp_path / "b" / MANIFEST_NAME).read_text())
        profile = manifest["reference_profile"]
        names = [f"{attribute}__{measure}"
                 for attribute, measure in manifest["plan"]]
        assert [f["name"] for f in profile["features"]] == names
        assert profile["n_rows"] > 0

    def test_profile_round_trips_through_load(self, trained_em, tmp_path):
        matcher, _, _, _ = trained_em
        bundle = matcher.export_bundle(tmp_path / "b")
        restored = ModelBundle.load(tmp_path / "b")
        assert restored.reference_profile == bundle.reference_profile

    def test_manifest_key_is_additive(self, trained_em, tmp_path):
        """Bundles without a profile simply omit the key — FORMAT_VERSION
        is unchanged and old manifests stay loadable."""
        from repro.core import AutoMLEM

        _, train, valid, _ = trained_em
        plain = AutoMLEM(n_iterations=1, forest_size=4, seed=0,
                         capture_reference_profile=False)
        plain.fit(train, valid)
        plain.export_bundle(tmp_path / "plain")
        manifest = json.loads(
            (tmp_path / "plain" / MANIFEST_NAME).read_text())
        assert "reference_profile" not in manifest
        assert ModelBundle.load(tmp_path / "plain").reference_profile \
            is None