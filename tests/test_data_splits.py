"""Tests for stratified pair-set splitting."""

import pytest

from repro.data import (
    MATCH,
    NON_MATCH,
    PairSet,
    RecordPair,
    Table,
    stratified_split,
    train_valid_test_split,
)


def make_pairs(n_pos: int, n_neg: int) -> PairSet:
    n = n_pos + n_neg
    a = Table("A", ["v"], [[f"a{i}"] for i in range(n)])
    b = Table("B", ["v"], [[f"b{i}"] for i in range(n)])
    pairs = [RecordPair(a[i], b[i], MATCH if i < n_pos else NON_MATCH)
             for i in range(n)]
    return PairSet(a, b, pairs)


class TestStratifiedSplit:
    def test_partition_is_complete_and_disjoint(self):
        ps = make_pairs(30, 70)
        folds = stratified_split(ps, (0.6, 0.2, 0.2), seed=0)
        keys = [p.key for fold in folds for p in fold]
        assert sorted(keys) == sorted(p.key for p in ps)
        assert len(keys) == len(set(keys))

    def test_class_proportions_preserved(self):
        ps = make_pairs(20, 80)
        train, test = stratified_split(ps, (0.75, 0.25), seed=1)
        assert train.num_positive == 15
        assert test.num_positive == 5

    def test_seed_determinism(self):
        ps = make_pairs(10, 40)
        f1 = stratified_split(ps, (0.5, 0.5), seed=9)
        f2 = stratified_split(ps, (0.5, 0.5), seed=9)
        assert [p.key for p in f1[0]] == [p.key for p in f2[0]]

    def test_different_seed_differs(self):
        ps = make_pairs(10, 40)
        f1 = stratified_split(ps, (0.5, 0.5), seed=1)
        f2 = stratified_split(ps, (0.5, 0.5), seed=2)
        assert [p.key for p in f1[0]] != [p.key for p in f2[0]]

    def test_invalid_fractions(self):
        ps = make_pairs(5, 5)
        with pytest.raises(ValueError, match="must sum to 1"):
            stratified_split(ps, (0.5, 0.6))

    def test_unlabeled_raises(self):
        ps = make_pairs(5, 5).without_labels()
        with pytest.raises(ValueError, match="labeled"):
            stratified_split(ps, (0.5, 0.5))


class TestTrainValidTest:
    def test_paper_proportions(self):
        # 80/20 then 4:1 -> 64/16/20.
        ps = make_pairs(100, 400)
        train, valid, test = train_valid_test_split(ps, seed=0)
        total = len(ps)
        assert len(train) == pytest.approx(0.64 * total, abs=3)
        assert len(valid) == pytest.approx(0.16 * total, abs=3)
        assert len(test) == pytest.approx(0.20 * total, abs=3)

    def test_all_folds_have_positives(self):
        ps = make_pairs(50, 200)
        for fold in train_valid_test_split(ps, seed=0):
            assert fold.num_positive > 0
