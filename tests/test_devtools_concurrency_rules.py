"""REP009/REP010/REP011 and the REP002 reachability taint: hit and
non-hit fixture trees, driven through ``lint_paths`` so the project
pass, suppression handling and per-file dedup are exercised end to
end."""

import textwrap
from pathlib import Path

from repro.devtools.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_tree(tmp_path, files, select=None):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    selected = None if select is None else set(select.split(","))
    return lint_paths([tmp_path / "src"], select=selected, root=tmp_path)


def codes(violations):
    return [v.code for v in violations]


# -- REP009: lock-order cycles ------------------------------------------


TWO_LOCKS = """\
    import threading

    class Pair:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()
"""


def test_rep009_flags_opposite_nesting_orders(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/deadlock.py": TWO_LOCKS + """\

        def forward(p):
            with p._a:
                with p._b:
                    pass
    """,
    }, select="REP009")
    # One order alone is fine...
    assert found == []
    found = lint_tree(tmp_path, {
        "src/repro/deadlock.py": TWO_LOCKS + """\

    class Worker(Pair):
        def forward(self):
            with self._a:
                with self._b:
                    pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
    """,
    }, select="REP009")
    assert codes(found) == ["REP009", "REP009"]
    assert "lock-order cycle" in found[0].message


def test_rep009_consistent_order_across_functions_is_clean(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/ordered.py": TWO_LOCKS + """\

    class Worker(Pair):
        def one(self):
            with self._a:
                with self._b:
                    pass

        def two(self):
            with self._a:
                with self._b:
                    pass
    """,
    }, select="REP009")
    assert found == []


def test_rep009_cycle_through_call_chain(tmp_path):
    """The inversion is only visible interprocedurally: ``outer`` holds
    A and calls a helper that takes B, while another path nests B→A."""
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/chain.py": TWO_LOCKS + """\

    class Worker(Pair):
        def outer(self):
            with self._a:
                self._take_b()

        def _take_b(self):
            with self._b:
                pass

        def inverted(self):
            with self._b:
                with self._a:
                    pass
    """,
    }, select="REP009")
    assert "REP009" in codes(found)


def test_rep009_read_write_upgrade_is_flagged(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/up.py": """\
            from repro.concurrency import ReadWriteLock

            class Store:
                def __init__(self):
                    self._rw = ReadWriteLock()

                def bad(self):
                    with self._rw.read_locked():
                        with self._rw.write_locked():
                            pass

                def good(self):
                    with self._rw.read_locked():
                        pass
        """,
        "src/repro/concurrency.py": """\
            class ReadWriteLock:
                def read_locked(self):
                    ...

                def write_locked(self):
                    ...
        """,
    }, select="REP009")
    assert codes(found) == ["REP009"]
    assert "read->write upgrade" in found[0].message


def test_rep009_plain_lock_reacquire_is_flagged_rlock_is_not(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/re.py": """\
            import threading

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self):
                    with self._lock:
                        with self._lock:
                            pass

            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def fine(self):
                    with self._lock:
                        with self._lock:
                            pass
        """,
    }, select="REP009")
    assert codes(found) == ["REP009"]
    assert "re-acquiring non-reentrant" in found[0].message


# -- REP010: unguarded writes to guarded attributes ---------------------


def cache_fixture(locked_evict):
    """A FeatureMatrixCache-shaped class; ``locked_evict`` drops or
    keeps the ``with self._lock:`` around the second write site."""
    evict_body = ("        with self._lock:\n"
                  "            self._items.pop(key, None)\n"
                  if locked_evict else
                  "        self._items.pop(key, None)\n")
    return {
        "src/repro/__init__.py": "",
        "src/repro/cache.py": (
            "import threading\n\n\n"
            "class MatrixCache:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._items = {}\n\n"
            "    def store(self, key, value):\n"
            "        with self._lock:\n"
            "            self._items[key] = value\n\n"
            "    def evict(self, key):\n" + evict_body),
    }


def test_rep010_catches_write_without_its_inferred_lock(tmp_path):
    found = lint_tree(tmp_path, cache_fixture(locked_evict=False),
                      select="REP010")
    assert codes(found) == ["REP010"]
    assert "self._items" in found[0].message
    assert "MatrixCache._lock" in found[0].message


def test_rep010_all_writes_locked_is_clean(tmp_path):
    assert lint_tree(tmp_path, cache_fixture(locked_evict=True),
                     select="REP010") == []


def test_rep010_read_side_does_not_license_a_write(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/concurrency.py": """\
            class ReadWriteLock:
                def read_locked(self):
                    ...

                def write_locked(self):
                    ...
        """,
        "src/repro/idx.py": """\
            from .concurrency import ReadWriteLock

            class Index:
                def __init__(self):
                    self._rw = ReadWriteLock()
                    self._rows = []

                def add(self, row):
                    with self._rw.write_locked():
                        self._rows.append(row)

                def sneaky(self, row):
                    with self._rw.read_locked():
                        self._rows.append(row)
        """,
    }, select="REP010")
    assert codes(found) == ["REP010"]
    assert "read side" in found[0].message


def test_rep010_explicit_guard_comment_declares_the_lock(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/decl.py": """\
            import threading

            class Declared:
                def __init__(self):
                    self._lock = threading.Lock()
                    # repro-guard: _state by _lock
                    self._state = None

                def poke(self):
                    self._state = 1
        """,
    }, select="REP010")
    assert codes(found) == ["REP010"]


def test_rep010_locked_helper_convention_is_understood(tmp_path):
    """A ``*_locked`` helper whose only non-constructor caller holds
    the lock writes with the lock held — no finding."""
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/helper.py": """\
            import threading

            class Helper:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0
                    self._reset_locked()

                def reset(self):
                    with self._lock:
                        self._reset_locked()

                def bump(self):
                    with self._lock:
                        self._n += 1

                def _reset_locked(self):
                    self._n = 0
        """,
    }, select="REP010")
    assert found == []


def test_rep010_suppression_comment_is_honored(tmp_path):
    files = cache_fixture(locked_evict=False)
    files["src/repro/cache.py"] = files["src/repro/cache.py"].replace(
        "        self._items.pop(key, None)\n",
        "        self._items.pop(key, None)"
        "  # repro-lint: disable=REP010 single-threaded teardown\n")
    assert lint_tree(tmp_path, files, select="REP010") == []


# -- REP011: blocking calls inside critical sections --------------------


def test_rep011_flags_blocking_calls_under_a_lock(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/block.py": """\
            import threading
            import time

            class Busy:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = None

                def waits_on_future(self, future):
                    with self._lock:
                        return future.result()

                def sleeps(self):
                    with self._lock:
                        time.sleep(0.1)

                def feeds_queue(self, item):
                    with self._lock:
                        self._queue.put(item)
        """,
    }, select="REP011")
    assert codes(found) == ["REP011", "REP011", "REP011"]
    messages = " | ".join(v.message for v in found)
    assert "Future.result()" in messages
    assert "time.sleep" in messages
    assert ".put()" in messages


def test_rep011_same_operations_outside_the_lock_are_clean(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/ok.py": """\
            import threading
            import time

            class Fine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = None

                def collect_then_block(self, future, item):
                    with self._lock:
                        pending = list(range(3))
                    time.sleep(0)
                    self._queue.put(item)
                    return future.result(), pending
        """,
    }, select="REP011")
    assert found == []


def test_rep011_condition_wait_on_held_condition_is_sanctioned(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/cv.py": """\
            import threading

            class Gate:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._open = False

                def block_until_open(self):
                    with self._cond:
                        while not self._open:
                            self._cond.wait()
        """,
    }, select="REP011")
    assert found == []


def test_rep011_str_join_and_dict_get_are_not_blocking(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/fp.py": """\
            import threading

            class NotBlocking:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cache = {}

                def fine(self, parts, key):
                    with self._lock:
                        text = ", ".join(parts)
                        return self._cache.get(key, text)
        """,
    }, select="REP011")
    assert found == []


def test_rep011_explicit_acquire_of_second_lock_is_flagged(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/nested.py": """\
            import threading

            class Nested:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def bad(self):
                    with self._a:
                        self._b.acquire()
                        self._b.release()
        """,
    }, select="REP011")
    assert codes(found) == ["REP011"]
    assert "explicit acquire" in found[0].message


# -- REP002 as call-graph reachability taint ----------------------------


def test_rep002_taint_follows_calls_out_of_the_scoped_packages(tmp_path):
    """The impure call sits in a package the per-file rule never
    scopes; only the reachability pass can connect it to a
    fingerprint."""
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/features/__init__.py": "",
        "src/repro/features/cache.py": """\
            from repro.util.stamp import salt

            def record_fingerprint(record):
                return hash((salt(), record))
        """,
        "src/repro/util/__init__.py": "",
        "src/repro/util/stamp.py": """\
            import time

            def salt():
                return time.time()
        """,
    }, select="REP002")
    assert codes(found) == ["REP002"]
    assert found[0].path.endswith("src/repro/util/stamp.py")
    assert "time.time" in found[0].message
    assert "record_fingerprint" in found[0].message  # the entry path


def test_rep002_taint_pure_closure_is_clean(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/features/__init__.py": "",
        "src/repro/features/cache.py": """\
            from repro.util.stamp import salt

            def record_fingerprint(record):
                return hash((salt(), record))
        """,
        "src/repro/util/__init__.py": "",
        "src/repro/util/stamp.py": """\
            def salt():
                return 42
        """,
    }, select="REP002")
    assert found == []


def test_rep002_taint_honors_the_monitor_carve_out(tmp_path):
    """``repro.monitor`` is excluded on the per-file rule; the
    reachability pass keeps the carve-out."""
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/monitor/__init__.py": "",
        "src/repro/monitor/stale.py": """\
            import time

            def staleness_fingerprint():
                return time.time()
        """,
    }, select="REP002")
    assert found == []


def test_rep002_taint_dedupes_against_the_per_file_rule(tmp_path):
    """A wall-clock call directly inside a scoped fingerprint function
    is seen by both passes but reported once."""
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/features/__init__.py": "",
        "src/repro/features/cache.py": """\
            import time

            def record_fingerprint(record):
                return hash((time.time(), record))
        """,
    }, select="REP002")
    assert codes(found) == ["REP002"]


def test_rep002_taint_flags_unseeded_randomness_in_closure(tmp_path):
    found = lint_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/util/__init__.py": "",
        "src/repro/util/keys.py": """\
            import numpy as np

            def jitter():
                return np.random.random()

            def cache_key(item):
                return (item, jitter())
        """,
    }, select="REP002")
    assert codes(found) == ["REP002"]
    assert "unseeded randomness" in found[0].message


# -- the real tree stays clean ------------------------------------------


def test_real_tree_has_no_unbaselined_whole_program_findings():
    found = lint_paths(
        [REPO_ROOT / "src"],
        select={"REP002", "REP009", "REP010", "REP011"},
        root=REPO_ROOT)
    assert found == []
