"""Tests for the EM pipeline search space and pipeline construction."""

import numpy as np
import pytest

from repro.automl import (
    ALL_MODELS,
    ALL_PREPROCESSORS,
    build_config_space,
    build_pipeline,
)


@pytest.fixture()
def em_data(rng):
    """EM-shaped data: skewed classes, NaN, similarity-like features."""
    n = 250
    y = (rng.random(n) < 0.15).astype(int)
    X = np.column_stack([
        np.clip(y * 0.7 + rng.normal(0.2, 0.2, n), 0, 1),
        np.clip(y * 0.5 + rng.normal(0.3, 0.25, n), 0, 1),
        rng.random(n),
        rng.integers(0, 12, n).astype(float),
    ])
    X[rng.random(X.shape) < 0.08] = np.nan
    return X[:200], y[:200], X[200:], y[200:]


class TestSpaceConstruction:
    def test_rf_only_space_has_one_classifier_choice(self):
        space = build_config_space(models=("random_forest",))
        choices = space.hyperparameters["classifier:__choice__"].choices
        assert choices == ["random_forest"]

    def test_all_space_has_eleven_models(self):
        space = build_config_space(models="all")
        choices = space.hyperparameters["classifier:__choice__"].choices
        assert set(choices) == set(ALL_MODELS)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown models"):
            build_config_space(models=("xgboost",))

    def test_ablation_removes_dp_dimensions(self):
        space = build_config_space(include_data_preprocessing=False)
        assert "balancing:strategy" not in space.hyperparameters
        assert "rescaling:__choice__" not in space.hyperparameters
        # imputation must stay: NaN features are a given for EM
        assert "imputation:strategy" in space.hyperparameters

    def test_ablation_removes_fp_dimensions(self):
        space = build_config_space(include_feature_preprocessing=False)
        assert "preprocessor:__choice__" not in space.hyperparameters

    def test_preprocessor_choices(self):
        space = build_config_space()
        assert set(space.hyperparameters["preprocessor:__choice__"].choices) \
            == set(ALL_PREPROCESSORS)

    def test_forest_size_constant(self):
        space = build_config_space(forest_size=17)
        assert space.hyperparameters[
            "classifier:forest:n_estimators"].value == 17


class TestPipelineConstruction:
    def _fit_and_score(self, config, em_data):
        X_train, y_train, X_test, y_test = em_data
        pipeline = build_pipeline(config, random_state=0)
        pipeline.fit(X_train, y_train)
        predictions = pipeline.predict(X_test)
        assert predictions.shape == y_test.shape
        probs = pipeline.predict_proba(X_test)
        assert probs.shape == (len(y_test), 2)
        return predictions

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_every_classifier_choice_runs(self, model, em_data, rng):
        space = build_config_space(models=(model,), forest_size=8)
        config = space.sample(rng)
        self._fit_and_score(config, em_data)

    @pytest.mark.parametrize("preprocessor", ALL_PREPROCESSORS)
    def test_every_preprocessor_choice_runs(self, preprocessor, em_data,
                                            rng):
        space = build_config_space(models=("random_forest",), forest_size=8)
        for _ in range(200):
            config = space.sample(rng)
            if config["preprocessor:__choice__"] == preprocessor:
                break
        else:
            pytest.fail(f"never sampled {preprocessor}")
        self._fit_and_score(config, em_data)

    def test_chi2_preprocessing_handles_negative_features(self, em_data):
        # standardize makes features negative; the chi2 shift must cope.
        config = {
            "imputation:strategy": "mean",
            "balancing:strategy": "none",
            "rescaling:__choice__": "standardize",
            "preprocessor:__choice__": "select_percentile_classification",
            "preprocessor:select_percentile:percentile": 50.0,
            "preprocessor:select_percentile:score_func": "chi2",
            "classifier:__choice__": "random_forest",
            "classifier:forest:n_estimators": 8,
            "classifier:forest:criterion": "gini",
            "classifier:forest:max_features": 0.5,
            "classifier:forest:min_samples_split": 2,
            "classifier:forest:min_samples_leaf": 1,
            "classifier:forest:bootstrap": True,
        }
        self._fit_and_score(config, em_data)

    def test_robust_scaler_quantiles_converted(self, em_data):
        config = {
            "imputation:strategy": "median",
            "balancing:strategy": "none",
            "rescaling:__choice__": "robust_scaler",
            "rescaling:robust_scaler:q_min": 0.19,
            "rescaling:robust_scaler:q_max": 0.92,
            "preprocessor:__choice__": "no_preprocessing",
            "classifier:__choice__": "decision_tree",
            "classifier:decision_tree:criterion": "gini",
            "classifier:decision_tree:max_depth": 5,
            "classifier:decision_tree:min_samples_leaf": 1,
        }
        pipeline = build_pipeline(config)
        scaler = dict(pipeline.pipeline.steps)["rescaling"]
        assert scaler.q_min == pytest.approx(19.0)
        assert scaler.q_max == pytest.approx(92.0)
        self._fit_and_score(config, em_data)

    def test_balancing_weighting_oversamples_for_nonweight_models(self,
                                                                  em_data):
        config = {
            "imputation:strategy": "mean",
            "balancing:strategy": "weighting",
            "rescaling:__choice__": "none",
            "preprocessor:__choice__": "no_preprocessing",
            "classifier:__choice__": "gaussian_nb",
        }
        pipeline = build_pipeline(config)
        assert pipeline._needs_oversampling
        self._fit_and_score(config, em_data)

    def test_balancing_weighting_uses_class_weight_for_forests(self):
        config = {
            "imputation:strategy": "mean",
            "balancing:strategy": "weighting",
            "rescaling:__choice__": "none",
            "preprocessor:__choice__": "no_preprocessing",
            "classifier:__choice__": "random_forest",
            "classifier:forest:n_estimators": 8,
            "classifier:forest:criterion": "gini",
            "classifier:forest:max_features": 0.5,
            "classifier:forest:min_samples_split": 2,
            "classifier:forest:min_samples_leaf": 1,
            "classifier:forest:bootstrap": True,
        }
        pipeline = build_pipeline(config)
        assert not pipeline._needs_oversampling
        classifier = dict(pipeline.pipeline.steps)["classifier"]
        assert classifier.class_weight == "balanced"

    def test_describe_prints_figure11_style(self, em_data, rng):
        space = build_config_space(forest_size=8)
        pipeline = build_pipeline(space.sample(rng))
        text = pipeline.describe()
        assert "'classifier:__choice__'" in text
        assert text.startswith("{") and text.endswith("}")

    def test_unknown_choices_raise(self):
        with pytest.raises(ValueError, match="unknown classifier"):
            build_pipeline({"imputation:strategy": "mean",
                            "classifier:__choice__": "svm_rbf"})
