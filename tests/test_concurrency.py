"""ReadWriteLock semantics: sharing, exclusion, reentrancy, misuse."""

import threading
import time

import pytest

from repro.concurrency import ReadWriteLock


def _in_thread(fn, timeout=30.0):
    """Run ``fn`` in a thread; return (finished, result_holder)."""
    holder = []
    thread = threading.Thread(target=lambda: holder.append(fn()))
    thread.start()
    thread.join(timeout)
    return not thread.is_alive(), holder


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(3, timeout=30)

        def reader():
            with lock.read_locked():
                entered.wait()  # all three inside simultaneously
            return True

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        observed = []
        with lock.write_locked():
            finished, _ = _in_thread(
                lambda: lock.acquire_read(), timeout=0.3)
            assert not finished, "reader entered during a write"
            observed.append("exclusive")
        # After release the blocked reader gets in.
        time.sleep(0.1)
        assert observed == ["exclusive"]

    def test_write_waits_for_readers_to_drain(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        finished, _ = _in_thread(lambda: lock.acquire_write(), timeout=0.3)
        assert not finished
        lock.release_read()
        # The waiting writer proceeds once readers drain.
        deadline = time.monotonic() + 30
        while lock._writer is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert lock._writer is not None

    def test_read_reentrancy(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.read_locked():  # same thread re-enters freely
                pass
        # Fully released: a writer can proceed immediately.
        finished, _ = _in_thread(
            lambda: (lock.acquire_write(), lock.release_write()))
        assert finished

    def test_writer_may_reenter_both_sides(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():  # write implies read
                    pass
        finished, _ = _in_thread(
            lambda: (lock.acquire_write(), lock.release_write()))
        assert finished

    def test_upgrade_raises(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_unbalanced_releases_raise(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError, match="release_read"):
            lock.release_read()
        with pytest.raises(RuntimeError, match="non-owning"):
            lock.release_write()

    def test_stress_counter_consistency(self):
        """Increments under the write lock are never lost; readers see
        only fully applied values."""
        lock = ReadWriteLock()
        state = {"value": 0}
        n_threads, per_thread = 8, 300
        barrier = threading.Barrier(n_threads)

        def worker(thread_index):
            barrier.wait()
            for i in range(per_thread):
                if i % 3 == 0:
                    with lock.write_locked():
                        state["value"] += 1
                else:
                    with lock.read_locked():
                        assert state["value"] >= 0

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not any(t.is_alive() for t in threads)
        expected = n_threads * len(range(0, per_thread, 3))
        assert state["value"] == expected
