"""ReadWriteLock and EventGate semantics: sharing, exclusion,
reentrancy, misuse, every-Nth gating."""

import threading
import time

import pytest

from repro.concurrency import (
    EventGate,
    LockOrderError,
    ReadWriteLock,
    WitnessedLock,
    active_lock_witness,
    lock_witness_enabled,
)


def _in_thread(fn, timeout=30.0):
    """Run ``fn`` in a thread; return (finished, result_holder)."""
    holder = []
    thread = threading.Thread(target=lambda: holder.append(fn()))
    thread.start()
    thread.join(timeout)
    return not thread.is_alive(), holder


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(3, timeout=30)

        def reader():
            with lock.read_locked():
                entered.wait()  # all three inside simultaneously
            return True

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        observed = []
        with lock.write_locked():
            finished, _ = _in_thread(
                lambda: lock.acquire_read(), timeout=0.3)
            assert not finished, "reader entered during a write"
            observed.append("exclusive")
        # After release the blocked reader gets in.
        time.sleep(0.1)
        assert observed == ["exclusive"]

    def test_write_waits_for_readers_to_drain(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        finished, _ = _in_thread(lambda: lock.acquire_write(), timeout=0.3)
        assert not finished
        lock.release_read()
        # The waiting writer proceeds once readers drain.
        deadline = time.monotonic() + 30
        while lock._writer is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert lock._writer is not None

    def test_read_reentrancy(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.read_locked():  # same thread re-enters freely
                pass
        # Fully released: a writer can proceed immediately.
        finished, _ = _in_thread(
            lambda: (lock.acquire_write(), lock.release_write()))
        assert finished

    def test_writer_may_reenter_both_sides(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():  # write implies read
                    pass
        finished, _ = _in_thread(
            lambda: (lock.acquire_write(), lock.release_write()))
        assert finished

    def test_upgrade_raises(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_unbalanced_releases_raise(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError, match="release_read"):
            lock.release_read()
        with pytest.raises(RuntimeError, match="non-owning"):
            lock.release_write()

    def test_stress_counter_consistency(self):
        """Increments under the write lock are never lost; readers see
        only fully applied values."""
        lock = ReadWriteLock()
        state = {"value": 0}
        n_threads, per_thread = 8, 300
        barrier = threading.Barrier(n_threads)

        def worker(thread_index):
            barrier.wait()
            for i in range(per_thread):
                if i % 3 == 0:
                    with lock.write_locked():
                        state["value"] += 1
                else:
                    with lock.read_locked():
                        assert state["value"] >= 0

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not any(t.is_alive() for t in threads)
        expected = n_threads * len(range(0, per_thread, 3))
        assert state["value"] == expected


class TestEventGate:
    def test_fires_exactly_every_nth_tick(self):
        gate = EventGate(3)
        fired = [gate.tick() for _ in range(9)]
        assert fired == [False, False, True] * 3
        assert gate.count == 9

    def test_interval_one_fires_every_time(self):
        gate = EventGate(1)
        assert [gate.tick() for _ in range(4)] == [True] * 4

    def test_bulk_tick_crossing_multiple_boundaries_fires_once(self):
        """tick(n) reports boundary crossings, not a per-event count —
        a 25-event batch over a 10-gate is one True, and the next
        boundary arrives 5 events later."""
        gate = EventGate(10)
        assert gate.tick(25) is True
        assert gate.tick(4) is False
        assert gate.tick(1) is True   # crosses 30
        assert gate.count == 30

    def test_zero_tick_is_a_no_op(self):
        gate = EventGate(5)
        assert gate.tick(0) is False
        assert gate.count == 0

    def test_reset_restarts_the_cycle(self):
        gate = EventGate(4)
        for _ in range(3):
            gate.tick()
        gate.reset()
        assert gate.count == 0
        assert [gate.tick() for _ in range(4)] == [False, False, False,
                                                   True]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="interval"):
            EventGate(0)
        with pytest.raises(ValueError, match="n must be"):
            EventGate(3).tick(-1)

    def test_concurrent_ticks_fire_exactly_once_per_boundary(self):
        gate = EventGate(10)
        n_threads, per_thread = 8, 250
        fired = [0] * n_threads
        barrier = threading.Barrier(n_threads)

        def worker(index):
            barrier.wait()
            for _ in range(per_thread):
                if gate.tick():
                    fired[index] += 1

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not any(thread.is_alive() for thread in threads)
        total = n_threads * per_thread
        assert gate.count == total
        assert sum(fired) == total // 10


class TestLockWitness:
    """The runtime lock-order witness: the dynamic half of REP009."""

    def test_inverted_acquisition_order_trips_the_witness(self):
        with lock_witness_enabled():
            a, b = WitnessedLock("wa"), WitnessedLock("wb")
            with a:
                with b:
                    pass
            with pytest.raises(LockOrderError, match="lock order inversion"):
                with b:
                    with a:
                        pass

    def test_inversion_is_caught_without_the_deadly_interleaving(self):
        """The edges persist: thread one runs A→B to completion, thread
        two later runs B→A — no actual deadlock occurs, the witness
        still reports the cycle."""
        with lock_witness_enabled():
            a, b = WitnessedLock("ta"), WitnessedLock("tb")

            def forward():
                with a:
                    with b:
                        pass
                return "ok"

            def backward():
                try:
                    with b:
                        with a:
                            pass
                except LockOrderError:
                    return "tripped"
                return "silent"

            finished, result = _in_thread(forward)
            assert finished and result == ["ok"]
            finished, result = _in_thread(backward)
            assert finished and result == ["tripped"]

    def test_consistent_order_records_edges_without_raising(self):
        with lock_witness_enabled() as witness:
            a, b = WitnessedLock("ca"), WitnessedLock("cb")
            for _ in range(3):
                with a:
                    with b:
                        pass
            assert witness.edges() == {"ca": {"cb"}}

    def test_rwlock_inversion_between_two_locks_trips(self):
        with lock_witness_enabled():
            outer = ReadWriteLock("rw-outer")
            inner = ReadWriteLock("rw-inner")
            with outer.read_locked():
                with inner.write_locked():
                    pass
            with pytest.raises(LockOrderError):
                with inner.read_locked():
                    with outer.write_locked():
                        pass

    def test_rwlock_reentrancy_is_not_an_inversion(self):
        with lock_witness_enabled() as witness:
            lock = ReadWriteLock("rw-re")
            with lock.read_locked():
                with lock.read_locked():
                    pass
            with lock.write_locked():
                with lock.write_locked():
                    with lock.read_locked():
                        pass
            assert witness.held() == ()
            assert witness.edges() == {}

    def test_upgrade_attempt_leaves_the_witness_stack_balanced(self):
        with lock_witness_enabled() as witness:
            lock = ReadWriteLock("rw-up")
            with lock.read_locked():
                with pytest.raises(RuntimeError, match="upgrade"):
                    lock.acquire_write()
            assert witness.held() == ()

    def test_disabled_witness_has_no_hooks(self):
        assert active_lock_witness() is None
        a, b = WitnessedLock("da"), WitnessedLock("db")
        with a:
            with b:
                pass
        with b:  # would trip if a witness were installed
            with a:
                pass

    def test_stress_rwlock_counter_under_witness(self):
        """The existing reader/writer stress pattern stays correct (and
        trip-free) with the witness enabled."""
        with lock_witness_enabled() as witness:
            lock = ReadWriteLock("rw-stress")
            state = {"value": 0}
            totals = []
            barrier = threading.Barrier(8)

            def writer():
                barrier.wait()
                for _ in range(200):
                    with lock.write_locked():
                        state["value"] += 1

            def reader():
                barrier.wait()
                local = 0
                for _ in range(200):
                    with lock.read_locked():
                        local = max(local, state["value"])
                totals.append(local)

            threads = [threading.Thread(target=writer) for _ in range(4)]
            threads += [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert not any(thread.is_alive() for thread in threads)
            assert state["value"] == 4 * 200
            assert all(0 <= total <= 800 for total in totals)
            assert witness.held() == ()

    def test_witnessed_lock_basics(self):
        lock = WitnessedLock("basic")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert lock.acquire(blocking=False)
        lock.release()
