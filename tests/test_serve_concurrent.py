"""Concurrency stress tests: MatchService and the locks down the stack.

The tentpole guarantee under test: N barrier-started threads driving one
:class:`MatchService` with hundreds of mixed ``submit`` /
``submit_records`` / ``extend_index`` requests produce *bit-exact* the
probabilities a sequential replay of each request produces, a valid
non-interleaved JSONL request log, and ``ServeMetrics`` totals that sum
correctly.  Every test runs under a ``faulthandler`` deadline so a
deadlock dumps all thread stacks and fails fast instead of hanging CI.
"""

import faulthandler
import json
import threading

import numpy as np
import pytest

from repro.automl.runner import RunLog, read_run_log
from repro.blocking import BlockIndex, QGramBlocker
from repro.concurrency import lock_witness_enabled
from repro.features.cache import FeatureMatrixCache
from repro.serve import (
    MatchService,
    ServeMetrics,
    ServiceOverloaded,
    StreamMatcher,
)

#: Hard per-test deadline: on expiry faulthandler dumps every thread's
#: stack and kills the process, so a deadlock is a loud traceback in CI
#: rather than a hung job.
DEADLINE_SECONDS = 300.0


@pytest.fixture(autouse=True)
def deadlock_deadline():
    faulthandler.dump_traceback_later(DEADLINE_SECONDS, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture(autouse=True)
def lock_order_witness():
    """Run the whole stress suite under the runtime lock-order witness:
    any acquisition that closes an order cycle raises LockOrderError in
    the offending thread instead of deadlocking some future run."""
    with lock_witness_enabled() as witness:
        yield witness


@pytest.fixture()
def bundle(trained_em):
    return trained_em[0].export_bundle()


def _run_threads(n_threads, target):
    """Start ``n_threads`` barrier-synchronized threads and join them.

    ``target(thread_index, barrier)`` must wait on the barrier itself so
    every thread hits the service at the same instant.
    """
    barrier = threading.Barrier(n_threads)
    errors = []

    def _wrapped(i):
        try:
            target(i, barrier)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=_wrapped, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestMatchServiceStress:
    N_THREADS = 8
    REQUESTS_PER_THREAD = 26  # 8 x 26 = 208 >= 200 mixed requests

    def test_stress_bit_exact_parity_log_and_metrics(
            self, small_benchmark, trained_em, bundle, tmp_path):
        _, _, _, test = trained_em
        table_a, table_b = small_benchmark.table_a, small_benchmark.table_b
        blocker = QGramBlocker("name", q=3, min_overlap=2)
        catalog = list(table_b)
        base = catalog[:len(catalog) // 2]
        extra = catalog[len(catalog) // 2:]
        # One extension chunk per producer thread, all non-empty.
        chunk = max(1, len(extra) // self.N_THREADS)
        extend_chunks = [extra[i * chunk:(i + 1) * chunk]
                         for i in range(self.N_THREADS)]
        extend_chunks = [c for c in extend_chunks if c]

        index = BlockIndex(blocker, table_name=table_b.name,
                           columns=table_b.columns)
        index.add_records(base)

        pair_slices = [test[start:start + 8]
                       for start in range(0, min(len(test), 64), 8)]
        probe_records = list(table_a)
        record_slices = [probe_records[start:start + 5]
                         for start in range(0, min(len(probe_records), 80),
                                            5)]

        log_path = tmp_path / "stress.jsonl"
        matcher = StreamMatcher(bundle, index=index, request_log=log_path)
        service = MatchService(matcher, workers=self.N_THREADS,
                               max_queue=32, overflow="block")

        submit_futures = []       # (slice_index, future)
        records_futures = []      # (slice_index, future)
        extend_futures = []
        collected = threading.Lock()

        def produce(thread_index, barrier):
            rng = np.random.default_rng(1000 + thread_index)
            ops = (["submit"] * 13 + ["records"] * 12 + ["extend"])
            rng.shuffle(ops)
            assert len(ops) == self.REQUESTS_PER_THREAD
            barrier.wait()
            for op_index, op in enumerate(ops):
                if op == "extend":
                    if thread_index < len(extend_chunks):
                        future = service.extend_index(
                            extend_chunks[thread_index])
                        with collected:
                            extend_futures.append(future)
                elif op == "submit":
                    j = (thread_index + op_index) % len(pair_slices)
                    future = service.submit(pair_slices[j])
                    with collected:
                        submit_futures.append((j, future))
                else:
                    j = (thread_index * 7 + op_index) % len(record_slices)
                    future = service.submit_records(record_slices[j])
                    with collected:
                        records_futures.append((j, future))

        _run_threads(self.N_THREADS, produce)
        submit_results = [(j, f.result()) for j, f in submit_futures]
        records_results = [(j, f.result()) for j, f in records_futures]
        extend_added = [f.result() for f in extend_futures]
        service.close()

        # -- extends all landed: the index holds the full catalog ------
        assert sum(extend_added) == sum(len(c) for c in extend_chunks)
        assert index.num_records == len(base) + sum(extend_added)

        # -- bit-exact parity: pre-blocked submits vs sequential replay
        replay = StreamMatcher(bundle)
        expected_by_slice = {
            j: replay.submit(pair_slices[j])
            for j in {j for j, _ in submit_results}}
        for j, result in submit_results:
            expected = expected_by_slice[j]
            assert np.array_equal(result.probabilities,
                                  expected.probabilities)
            assert np.array_equal(result.predictions, expected.predictions)

        # -- bit-exact parity: record submits vs a sequential replay
        # against the catalog snapshot each probe actually saw.  Extends
        # serialize under the index write lock, so the observed states
        # form one chain and a snapshot's record count identifies it.
        replay_index_by_size = {}
        for j, result in records_results:
            snapshot = result.pairs.table_b
            size = snapshot.num_rows
            if size not in replay_index_by_size:
                rebuilt = BlockIndex(blocker, table_name=snapshot.name,
                                     columns=snapshot.columns)
                rebuilt.add_records(snapshot)
                replay_index_by_size[size] = StreamMatcher(bundle,
                                                           index=rebuilt)
            expected = replay_index_by_size[size].submit_records(
                record_slices[j])
            assert [p.key for p in result.pairs] == \
                [p.key for p in expected.pairs]
            assert np.array_equal(result.probabilities,
                                  expected.probabilities)
            assert np.array_equal(result.predictions, expected.predictions)
        assert len(base) in replay_index_by_size or len(records_results) == 0

        # -- ServeMetrics totals sum over exactly the served requests --
        snapshot = matcher.metrics.snapshot()
        scored = submit_results + records_results
        assert snapshot["requests"] == len(scored)
        assert snapshot["errors"] == 0
        assert snapshot["rejected"] == 0
        assert snapshot["pairs"] == sum(len(r) for _, r in scored)
        assert snapshot["matches"] == sum(r.n_matches for _, r in scored)
        assert 0 <= snapshot["max_queue_depth"] <= 32
        assert service.queue_depth == 0

        # -- the JSONL log is whole lines, one per request + summary ---
        lines = [line for line in
                 log_path.read_text(encoding="utf-8").splitlines() if line]
        parsed = [json.loads(line) for line in lines]  # raises if torn
        requests = [r for r in parsed if r["type"] == "request"]
        assert len(requests) == len(scored)
        request_ids = [r["request_id"] for r in requests]
        assert len(set(request_ids)) == len(request_ids)
        assert all(r["error"] is None for r in requests)
        assert parsed[-1]["type"] == "summary"
        assert parsed[-1]["requests"] == len(scored)

    def test_single_worker_is_bit_identical_to_bare_matcher(
            self, trained_em, bundle):
        _, _, _, test = trained_em
        slices = [test[start:start + 7] for start in range(0, len(test), 7)]

        bare = StreamMatcher(bundle)
        expected = [bare.submit(s) for s in slices]

        matcher = StreamMatcher(trained_em[0].export_bundle())
        with MatchService(matcher, workers=1) as service:
            futures = [service.submit(s) for s in slices]
            results = [f.result() for f in futures]

        for result, reference in zip(results, expected):
            assert np.array_equal(result.probabilities,
                                  reference.probabilities)
            assert np.array_equal(result.predictions,
                                  reference.predictions)
        assert matcher.metrics.snapshot()["requests"] == \
            bare.metrics.snapshot()["requests"]


class _StallingMatcher:
    """StreamMatcher stand-in whose submit blocks until released."""

    def __init__(self):
        self.metrics = ServeMetrics()
        self.started = threading.Event()
        self.release = threading.Event()

    def submit(self, pairs):
        self.started.set()
        assert self.release.wait(timeout=60), "stalled request never freed"
        return pairs

    def close(self):
        pass


class TestBackpressure:
    def test_reject_overflow_raises_and_counts(self):
        stalled = _StallingMatcher()
        service = MatchService(stalled, workers=1, max_queue=1,
                               overflow="reject")
        first = service.submit("a")
        assert stalled.started.wait(timeout=60)
        second = service.submit("b")  # fills the queue
        with pytest.raises(ServiceOverloaded, match="queue is full"):
            service.submit("c")
        snapshot = stalled.metrics.snapshot()
        assert snapshot["rejected"] == 1
        assert snapshot["max_queue_depth"] == 1
        stalled.release.set()
        assert first.result(timeout=60) == "a"
        assert second.result(timeout=60) == "b"
        service.close()
        # Shed requests are neither served requests nor errors.
        final = stalled.metrics.snapshot()
        assert final["rejected"] == 1
        assert final["errors"] == 0

    def test_block_overflow_throttles_instead(self):
        stalled = _StallingMatcher()
        service = MatchService(stalled, workers=1, max_queue=1,
                               overflow="block")
        first = service.submit("a")
        assert stalled.started.wait(timeout=60)
        second = service.submit("b")

        blocked_future = []

        def producer():
            blocked_future.append(service.submit("c"))

        thread = threading.Thread(target=producer)
        thread.start()
        thread.join(timeout=0.5)
        assert thread.is_alive(), "third submit should block, not reject"
        stalled.release.set()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert first.result(timeout=60) == "a"
        assert second.result(timeout=60) == "b"
        assert blocked_future[0].result(timeout=60) == "c"
        assert stalled.metrics.snapshot()["rejected"] == 0
        service.close()

    def test_invalid_construction(self):
        stalled = _StallingMatcher()
        with pytest.raises(ValueError, match="workers"):
            MatchService(stalled, workers=0)
        with pytest.raises(ValueError, match="max_queue"):
            MatchService(stalled, max_queue=0)
        with pytest.raises(ValueError, match="overflow"):
            MatchService(stalled, overflow="drop")

    def test_closed_service_rejects_new_requests(self):
        stalled = _StallingMatcher()
        stalled.release.set()
        service = MatchService(stalled, workers=2)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit("late")


class TestFeatureMatrixCacheConcurrency:
    def test_counters_and_capacity_under_contention(self):
        cache = FeatureMatrixCache(max_entries=8)
        n_threads = 8
        ops_per_thread = 1500
        lookups_issued = [0] * n_threads

        def hammer(thread_index, barrier):
            rng = np.random.default_rng(thread_index)
            keys = rng.integers(0, 32, size=ops_per_thread)
            stores = rng.random(ops_per_thread) < 0.3
            barrier.wait()
            for key, store in zip(keys, stores):
                key = int(key)
                if store:
                    cache.store(key, np.full((2, 2), float(key)))
                else:
                    matrix = cache.lookup(key)
                    lookups_issued[thread_index] += 1
                    if matrix is not None:
                        # Entries are copies: corruption here must never
                        # reach another thread's lookup.
                        assert np.all(matrix == float(key))
                        matrix[:] = -1.0

        _run_threads(n_threads, hammer)
        assert cache.lookups == cache.hits + cache.misses
        assert cache.lookups == sum(lookups_issued)
        assert len(cache) <= 8
        stats = cache.stats
        assert stats["hits"] + stats["misses"] == cache.lookups


class TestRunLogConcurrency:
    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path)
        n_threads, per_thread = 8, 200

        def writer(thread_index, barrier):
            barrier.wait()
            for sequence in range(per_thread):
                log.write({"type": "trial", "thread": thread_index,
                           "sequence": sequence,
                           "payload": "x" * (20 + thread_index)})

        _run_threads(n_threads, writer)
        log.close()
        records = read_run_log(path)  # json.loads raises on a torn line
        assert len(records) == n_threads * per_thread
        for thread_index in range(n_threads):
            mine = [r["sequence"] for r in records
                    if r["thread"] == thread_index]
            assert sorted(mine) == list(range(per_thread))

    def test_racing_close_is_idempotent(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl")
        log.write({"type": "trial"})

        def closer(thread_index, barrier):
            barrier.wait()
            log.close()

        _run_threads(8, closer)
        with pytest.raises(ValueError):
            log.write({"type": "trial"})
