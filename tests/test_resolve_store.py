"""Unit tests for the versioned EntityStore and its persistence."""

import pickle
import threading

import pytest

from repro.automl.runner import read_run_log
from repro.data.table import Record
from repro.resolve import (
    LATEST_POINTER,
    STORE_FORMAT_VERSION,
    CorrelationClustering,
    EntityStore,
    EntityStoreError,
    MatchDecision,
    RecordFusion,
    ResolveLog,
    node_key,
)


def D(left, right, score=0.9, matched=True):
    return MatchDecision(node_key(*left), node_key(*right), score, matched)


def record(record_id, **attrs):
    return Record(record_id, list(attrs), list(attrs.values()))


@pytest.fixture()
def store():
    built = EntityStore()
    built.add_records("a", [record(1, name="Acme", city="NYC"),
                            record(2, name="Acme Inc", city="NYC")])
    built.add_records("b", [record(1, name="Acme", city=None)])
    built.apply([D(("a", 1), ("b", 1)), D(("a", 2), ("b", 1))])
    return built


class TestEntityStore:
    def test_versioning_and_delta(self, store):
        assert store.version == 1
        delta = store.apply([D(("a", 9), ("b", 9))])
        assert store.version == 2
        assert delta.version == 2
        assert delta.n_decisions == 1
        assert delta.n_new_nodes == 2
        assert delta.n_unions == delta.n_attachments == 1
        assert delta.n_entity_merges == 0
        assert delta.entity_merge_rate == pytest.approx(0.0)
        assert "entity_merge_rate" in delta.to_dict()

    def test_lookups(self, store):
        assert store.entity_of(1) == "a:1"
        assert store.entity_of(1, side="b") == "a:1"
        assert store.entity_of(404) is None
        assert store.members("a:1") == (("a", 1), ("a", 2), ("b", 1))
        with pytest.raises(KeyError, match="unknown entity"):
            store.members("a:404")
        assert store.record_of(("a", 1))["name"] == "Acme"
        assert store.record_of(("a", 404)) is None
        assert len(store) == store.n_entities == 1
        assert store.n_records == 3
        assert "EntityStore(v1" in repr(store)

    def test_golden_record(self, store):
        golden = store.golden("a:1")
        assert golden["name"] == "Acme"       # modal value
        assert golden["city"] == "NYC"        # None payload skipped
        assert store.golden_records() == {"a:1": golden}

    def test_golden_without_payloads_raises(self):
        bare = EntityStore()
        bare.apply([D(("a", 1), ("b", 1))])
        with pytest.raises(EntityStoreError, match="no stored records"):
            bare.golden("a:1")

    def test_readd_replaces_payload_newest_wins(self, store):
        store.add_records("a", [record(1, name="Acme Updated",
                                       city="NYC")])
        fused = EntityStore(fusion=RecordFusion(default="newest"))
        fused.add_records("a", [record(1, v="old")])
        fused.add_records("a", [record(1, v="new")])
        assert store.record_of(("a", 1))["name"] == "Acme Updated"
        assert fused.golden("a:1") == {"v": "new"}

    def test_refiner_splits_in_entities_view(self):
        decisions = [D(("a", 1), ("b", 1)), D(("b", 1), ("a", 2)),
                     D(("a", 1), ("a", 2), 0.05, False)]
        raw = EntityStore()
        raw.apply(decisions)
        refined = EntityStore(refiner=CorrelationClustering(seed=0))
        refined.apply(decisions)
        assert len(raw.entities()) == 1
        assert len(refined.entities()) == 2

    def test_stats_surface(self, store):
        stats = store.stats()
        assert stats["version"] == 1
        assert stats["n_decisions"] == 2
        assert stats["n_records"] == 3
        assert stats["n_unions"] == 2
        assert stats["n_attachments"] == 2
        assert stats["last_entity_merge_rate"] == pytest.approx(0.0)
        assert stats["last_n_entity_merges"] == 0

    def test_concurrent_apply_keeps_counters_consistent(self):
        shared = EntityStore()
        batches = [[D(("a", i), ("b", i))] for i in range(40)]

        def worker(chunk):
            for batch in chunk:
                shared.apply(batch)

        threads = [threading.Thread(target=worker,
                                    args=(batches[i::4],))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.version == 40
        assert shared.n_decisions == 40
        assert shared.n_entities == 40


class TestPersistence:
    def test_round_trip_through_directory_latest(self, store, tmp_path):
        path = store.save(tmp_path)
        assert path.name == "snapshot-v000001.pkl"
        assert (tmp_path / LATEST_POINTER).read_text().strip() == \
            path.name
        loaded = EntityStore.load(tmp_path)
        assert loaded.version == store.version
        assert loaded.fingerprint == store.fingerprint
        assert loaded.entities() == store.entities()
        assert loaded.golden("a:1") == store.golden("a:1")
        # the loaded store is live: locks were recreated on unpickle
        loaded.apply([D(("a", 9), ("b", 9))])
        assert loaded.version == 2

    def test_save_drops_log_but_logs_the_snapshot(self, store, tmp_path):
        store.log = ResolveLog.ensure(tmp_path / "resolve.jsonl")
        path = store.save(tmp_path)
        store.log.close()
        lines = read_run_log(tmp_path / "resolve.jsonl")
        assert [line["type"] for line in lines] == ["snapshot"]
        assert lines[0]["store_version"] == 1
        assert EntityStore.load(path).log is None

    def test_missing_latest_pointer(self, tmp_path):
        with pytest.raises(EntityStoreError, match=LATEST_POINTER):
            EntityStore.load(tmp_path)

    def test_unreadable_snapshot(self, tmp_path):
        garbage = tmp_path / "snapshot-v000001.pkl"
        garbage.write_bytes(b"not a pickle")
        with pytest.raises(EntityStoreError, match="not a readable"):
            EntityStore.load(garbage)

    def test_wrong_payload_shape(self, tmp_path):
        target = tmp_path / "snap.pkl"
        target.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(EntityStoreError, match="does not contain"):
            EntityStore.load(target)

    def test_format_version_mismatch(self, store, tmp_path):
        path = store.save(tmp_path)
        payload = pickle.loads(path.read_bytes())
        payload["format_version"] = STORE_FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(EntityStoreError, match="unsupported"):
            EntityStore.load(path)

    def test_fingerprint_mismatch(self, store, tmp_path):
        path = store.save(tmp_path)
        payload = pickle.loads(path.read_bytes())
        payload["decisions_fingerprint"] = "0" * 64
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(EntityStoreError, match="fingerprint"):
            EntityStore.load(path)


class TestResolveLog:
    def test_apply_context_reaches_the_log(self, tmp_path):
        log_path = tmp_path / "resolve.jsonl"
        store = EntityStore(log=ResolveLog.ensure(log_path))
        store.apply([D(("a", 1), ("b", 1))],
                    context={"request_id": "r-1"})
        store.log.summary(**store.stats())
        store.log.close()
        lines = read_run_log(log_path)
        assert [line["type"] for line in lines] == ["resolve", "summary"]
        assert lines[0]["request_id"] == "r-1"
        assert lines[0]["version"] == 1
        assert lines[0]["n_unions"] == 1
        assert lines[1]["n_components"] == 1
