"""Property-based tests for the data substrate and synthetic generator."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import Table
from repro.data.io import _parse_value, _render_value
from repro.data.synthetic import CorruptionProfile, Corruptor

cell_values = st.one_of(
    st.none(),
    st.booleans(),
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    # strings that survive CSV round-trips unambiguously: no leading
    # numerals, no "true"/"false" collisions, no surrounding whitespace
    st.from_regex(r"[a-z][a-z ]{0,15}[a-z]", fullmatch=True).filter(
        lambda s: s not in ("true", "false")),
)


class TestCsvValueRoundTrip:
    @settings(max_examples=200)
    @given(cell_values)
    def test_render_parse_inverse(self, value):
        rendered = _render_value(value)
        parsed = _parse_value(rendered)
        if isinstance(value, float):
            assert isinstance(parsed, float)
            assert parsed == float(_render_value(value))
        else:
            assert parsed == value


class TestTableProperties:
    @settings(max_examples=30)
    @given(st.lists(st.lists(st.integers(-5, 5), min_size=2, max_size=2),
                    min_size=1, max_size=20))
    def test_column_matches_rows(self, rows):
        table = Table("t", ["x", "y"],
                      [[float(a), float(b)] for a, b in rows])
        assert table.column("x") == [float(a) for a, _ in rows]
        assert [record["y"] for record in table] == \
            [float(b) for _, b in rows]

    @settings(max_examples=30)
    @given(st.integers(1, 30), st.integers(0, 100))
    def test_sample_is_subset(self, n_rows, seed):
        table = Table("t", ["v"], [[float(i)] for i in range(n_rows)])
        rng = np.random.default_rng(seed)
        k = max(1, n_rows // 2)
        sampled = table.sample(k, rng)
        original_ids = {record.record_id for record in table}
        assert {record.record_id for record in sampled} <= original_ids
        assert sampled.num_rows == k


class TestCorruptionProperties:
    @settings(max_examples=50)
    @given(st.from_regex(r"[a-z]{2,8}( [a-z]{2,8}){0,5}", fullmatch=True),
           st.integers(0, 10_000))
    def test_corrupt_string_returns_str_or_none(self, text, seed):
        profile = CorruptionProfile(typo_prob=0.3, abbreviation_prob=0.3,
                                    token_drop_prob=0.3,
                                    token_swap_prob=0.3, missing_prob=0.1)
        corruptor = Corruptor(profile, np.random.default_rng(seed))
        out = corruptor.corrupt_string(text)
        assert out is None or isinstance(out, str)
        if out is not None:
            assert len(out.split()) >= 1

    @settings(max_examples=50)
    @given(st.floats(0.01, 1e6), st.integers(0, 10_000))
    def test_corrupt_numeric_stays_positive_scale(self, value, seed):
        profile = CorruptionProfile(numeric_jitter=0.1)
        corruptor = Corruptor(profile, np.random.default_rng(seed))
        out = corruptor.corrupt_numeric(value)
        assert out is not None
        assert out == out  # not NaN
        # 10% relative jitter stays within a sane multiplicative band
        assert 0.0 <= out <= value * 2.5 + 1.0

    @settings(max_examples=30)
    @given(st.floats(0.0, 0.9), st.floats(0.1, 3.0))
    def test_scaled_profile_caps(self, base, factor):
        profile = CorruptionProfile(typo_prob=base)
        assert 0.0 <= profile.scaled(factor).typo_prob <= 0.95


class TestScaledSpecProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.02, 1.0))
    def test_scaled_spec_consistent(self, scale):
        from repro.data.synthetic import DATASET_SPECS
        spec = DATASET_SPECS["abt_buy"].scaled(scale)
        assert spec.positive_pairs < spec.total_pairs
        assert spec.total_pairs >= 40
        assert spec.positive_pairs >= 8
