"""Unit tests for the character-sequence similarity functions."""

import pytest

from repro.similarity import (
    exact_match,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    needleman_wunsch,
    smith_waterman,
)


class TestExactMatch:
    def test_identical(self):
        assert exact_match("abc", "abc") == 1.0

    def test_different(self):
        assert exact_match("abc", "abd") == 0.0

    def test_case_sensitive(self):
        assert exact_match("ABC", "abc") == 0.0

    def test_empty_strings_match(self):
        assert exact_match("", "") == 1.0


class TestLevenshtein:
    @pytest.mark.parametrize("s1,s2,expected", [
        ("kitten", "sitting", 3.0),
        ("flaw", "lawn", 2.0),
        ("new yrk", "new york", 1.0),
        ("abc", "abc", 0.0),
        ("", "abc", 3.0),
        ("abc", "", 3.0),
        ("", "", 0.0),
        ("a", "b", 1.0),
        ("ab", "ba", 2.0),
    ])
    def test_known_distances(self, s1, s2, expected):
        assert levenshtein_distance(s1, s2) == expected

    def test_symmetry(self):
        assert levenshtein_distance("sunday", "saturday") == \
            levenshtein_distance("saturday", "sunday")

    def test_bounded_by_longer_length(self):
        assert levenshtein_distance("abcdef", "xyz") <= 6.0

    def test_similarity_identical(self):
        assert levenshtein_similarity("hello", "hello") == 1.0

    def test_similarity_disjoint(self):
        assert levenshtein_similarity("abc", "xyz") == 0.0

    def test_similarity_both_empty(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_similarity_half(self):
        # "ab" -> "ax": 1 edit over max length 2.
        assert levenshtein_similarity("ab", "ax") == 0.5

    def test_unicode(self):
        assert levenshtein_distance("café", "cafe") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value_martha(self):
        # Classic textbook example.
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.944444,
                                                                    abs=1e-5)
    def test_known_value_dixon(self):
        assert jaro_similarity("dixon", "dicksonx") == pytest.approx(0.766667,
                                                                     abs=1e-5)
    def test_no_common_characters(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty_side(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_symmetry(self):
        assert jaro_similarity("crate", "trace") == \
            jaro_similarity("trace", "crate")


class TestJaroWinkler:
    def test_known_value(self):
        assert jaro_winkler_similarity("martha", "marhta") == \
            pytest.approx(0.961111, abs=1e-5)

    def test_at_least_jaro(self):
        pairs = [("prefix", "prefixx"), ("dwayne", "duane"), ("ab", "ba")]
        for s1, s2 in pairs:
            assert jaro_winkler_similarity(s1, s2) >= jaro_similarity(s1, s2)

    def test_prefix_boost_capped_at_four(self):
        # Identical 4-char and 10-char prefixes boost the same.
        base = jaro_similarity("abcdexxxx", "abcdeyyyy")
        boosted = jaro_winkler_similarity("abcdexxxx", "abcdeyyyy")
        assert boosted == pytest.approx(base + 4 * 0.1 * (1 - base))

    def test_invalid_prefix_weight(self):
        with pytest.raises(ValueError, match="prefix_weight"):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)


class TestNeedlemanWunsch:
    def test_identical(self):
        assert needleman_wunsch("query", "query") == 1.0

    def test_both_empty(self):
        assert needleman_wunsch("", "") == 1.0

    def test_one_empty(self):
        assert needleman_wunsch("", "abc") == 0.0

    def test_bounds(self):
        assert 0.0 <= needleman_wunsch("database", "databse") <= 1.0

    def test_similar_beats_dissimilar(self):
        assert needleman_wunsch("matching", "matchng") > \
            needleman_wunsch("matching", "zzzzzz")


class TestSmithWaterman:
    def test_identical(self):
        assert smith_waterman("abc", "abc") == 1.0

    def test_substring_scores_full(self):
        # The shorter string aligns perfectly inside the longer.
        assert smith_waterman("xxabcxx", "abc") == 1.0

    def test_both_empty(self):
        assert smith_waterman("", "") == 1.0

    def test_one_empty(self):
        assert smith_waterman("abc", "") == 0.0

    def test_local_beats_global_on_embedded_match(self):
        s1, s2 = "zzzzhellozzzz", "hello"
        assert smith_waterman(s1, s2) >= needleman_wunsch(s1, s2)

    def test_bounds(self):
        assert 0.0 <= smith_waterman("abcdef", "badcfe") <= 1.0
