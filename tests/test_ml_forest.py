"""Tests for random forest / extra trees / the regression forest."""

import numpy as np
import pytest

from repro.ml import (
    ExtraTreesClassifier,
    RandomForestClassifier,
    f1_score,
)
from repro.ml.forest import RandomForestRegressor


class TestRandomForest:
    def test_beats_chance_on_noisy_data(self, noisy_data):
        X_train, y_train, X_test, y_test = noisy_data
        forest = RandomForestClassifier(n_estimators=20, random_state=0)
        forest.fit(X_train, y_train)
        assert f1_score(y_test, forest.predict(X_test)) > 0.6

    def test_proba_shape_and_range(self, blob_data):
        X_train, y_train, X_test, _ = blob_data
        forest = RandomForestClassifier(n_estimators=10).fit(X_train,
                                                             y_train)
        probs = forest.predict_proba(X_test)
        assert probs.shape == (len(X_test), 2)
        assert np.all(probs >= 0) and np.all(probs <= 1)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_vote_fraction_range(self, noisy_data):
        X_train, y_train, X_test, _ = noisy_data
        forest = RandomForestClassifier(n_estimators=10).fit(X_train,
                                                             y_train)
        votes = forest.vote_fraction(X_test)
        assert np.all(votes >= 0.5 - 1e-9)
        assert np.all(votes <= 1.0 + 1e-9)

    def test_vote_fraction_confident_on_separable(self, blob_data):
        X_train, y_train, X_test, _ = blob_data
        forest = RandomForestClassifier(n_estimators=20).fit(X_train,
                                                             y_train)
        assert forest.vote_fraction(X_test).mean() > 0.9

    def test_determinism_with_seed(self, noisy_data):
        X_train, y_train, X_test, _ = noisy_data
        f1 = RandomForestClassifier(n_estimators=5, random_state=7)
        f2 = RandomForestClassifier(n_estimators=5, random_state=7)
        np.testing.assert_array_equal(
            f1.fit(X_train, y_train).predict(X_test),
            f2.fit(X_train, y_train).predict(X_test))

    def test_feature_importances_sum_to_one(self, noisy_data):
        X_train, y_train, _, _ = noisy_data
        forest = RandomForestClassifier(n_estimators=10).fit(X_train,
                                                             y_train)
        importances = forest.feature_importances()
        assert importances.shape == (X_train.shape[1],)
        assert importances.sum() == pytest.approx(1.0)

    def test_informative_features_rank_higher(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 6))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        forest = RandomForestClassifier(n_estimators=20,
                                        random_state=0).fit(X, y)
        importances = forest.feature_importances()
        assert np.argmax(importances) == 2

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestClassifier(n_estimators=0)

    def test_more_trees_not_worse(self, noisy_data):
        X_train, y_train, X_test, y_test = noisy_data
        small = RandomForestClassifier(n_estimators=3, random_state=0)
        large = RandomForestClassifier(n_estimators=40, random_state=0)
        f1_small = f1_score(y_test,
                            small.fit(X_train, y_train).predict(X_test))
        f1_large = f1_score(y_test,
                            large.fit(X_train, y_train).predict(X_test))
        assert f1_large >= f1_small - 0.05


class TestExtraTrees:
    def test_learns_blobs(self, blob_data):
        X_train, y_train, X_test, y_test = blob_data
        model = ExtraTreesClassifier(n_estimators=15, random_state=0)
        model.fit(X_train, y_train)
        assert f1_score(y_test, model.predict(X_test)) > 0.9

    def test_no_bootstrap_by_default(self):
        assert ExtraTreesClassifier().bootstrap is False
        assert RandomForestClassifier().bootstrap is True


class TestRegressorForest:
    def test_mean_prediction(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(200, 3))
        y = 2.0 * X[:, 0] + rng.normal(0, 0.1, 200)
        forest = RandomForestRegressor(n_estimators=10, random_state=0)
        forest.fit(X, y)
        predictions = forest.predict(X)
        assert np.corrcoef(predictions, y)[0, 1] > 0.9

    def test_predict_with_std_shapes(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 2))
        y = X[:, 0]
        forest = RandomForestRegressor(n_estimators=5).fit(X, y)
        mean, std = forest.predict_with_std(X)
        assert mean.shape == std.shape == (50,)
        assert np.all(std >= 0)

    def test_single_tree_has_zero_std(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(100, 1))
        y = np.sin(6 * X[:, 0])
        forest = RandomForestRegressor(n_estimators=1,
                                       random_state=0).fit(X, y)
        _, std = forest.predict_with_std(X)
        assert np.allclose(std, 0.0)

    def test_ensemble_disagrees_somewhere(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(200, 1))
        y = np.sin(6 * X[:, 0]) + rng.normal(0, 0.2, 200)
        forest = RandomForestRegressor(n_estimators=20,
                                       random_state=0).fit(X, y)
        _, std = forest.predict_with_std(X)
        assert std.max() > 0.0
