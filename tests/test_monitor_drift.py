"""Tests for FeatureDriftMonitor: quiet controls, drift detection,
thread safety of the tap, and report determinism."""

import threading

import numpy as np
import pytest

from repro.features import ProfileAccumulator
from repro.monitor import FeatureDriftMonitor


def make_reference(seed=7, n=600, columns=("a", "b", "c")):
    """A reference profile over N(0,1) features with a scored model."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, len(columns)))
    probs = rng.random(n)
    preds = (probs > 0.7).astype(int)
    acc = ProfileAccumulator(list(columns), seed=0)
    acc.update(X, probabilities=probs, predictions=preds)
    return acc.finalize()


def reference_like_traffic(rng, n, n_features=3):
    X = rng.normal(size=(n, n_features))
    probs = rng.random(n)
    preds = (probs > 0.7).astype(int)
    return X, probs, preds


class TestVerdicts:
    def test_control_traffic_stays_quiet(self):
        monitor = FeatureDriftMonitor(make_reference(), min_rows=100)
        rng = np.random.default_rng(11)
        for _ in range(5):
            monitor.observe(*reference_like_traffic(rng, 80))
        report = monitor.report()
        assert report.sufficient
        assert not report.drifted
        assert report.drifted_features == []

    def test_shifted_features_flagged(self):
        monitor = FeatureDriftMonitor(make_reference(), min_rows=100)
        rng = np.random.default_rng(11)
        X, probs, preds = reference_like_traffic(rng, 400)
        X[:, 0] += 3.0  # feature "a" drifts, "b"/"c" stay put
        monitor.observe(X, probs, preds)
        report = monitor.report()
        assert report.drifted
        assert "a" in report.drifted_features
        assert "b" not in report.drifted_features
        assert report.feature("a").psi > report.feature("b").psi

    def test_null_rate_shift_flagged(self):
        monitor = FeatureDriftMonitor(make_reference(), min_rows=100)
        rng = np.random.default_rng(11)
        X, probs, preds = reference_like_traffic(rng, 400)
        X[rng.random(400) < 0.5, 1] = np.nan  # reference has ~0 nulls
        monitor.observe(X, probs, preds)
        report = monitor.report()
        feature = report.feature("b")
        assert feature.null_shift > 0.2
        assert feature.drifted
        assert "b" in report.drifted_features

    def test_match_rate_shift_alone_is_drift(self):
        monitor = FeatureDriftMonitor(make_reference(), min_rows=100,
                                      psi_threshold=99, ks_threshold=99,
                                      null_shift_threshold=99)
        rng = np.random.default_rng(11)
        X, probs, _ = reference_like_traffic(rng, 400)
        monitor.observe(X, probs, np.ones(400, dtype=int))
        report = monitor.report()
        assert report.drifted_features == []
        assert report.match_rate == 1.0
        assert report.match_rate_shift > 0.25
        assert report.drifted

    def test_below_min_rows_is_never_drifted(self):
        monitor = FeatureDriftMonitor(make_reference(), min_rows=1000)
        rng = np.random.default_rng(11)
        X, probs, preds = reference_like_traffic(rng, 200)
        X += 50.0  # grossly shifted, but not enough rows for a verdict
        monitor.observe(X, probs, preds)
        report = monitor.report()
        assert not report.sufficient
        assert not report.drifted
        assert report.drifted_features == []
        assert report.n_rows == 200


class TestTapContract:
    def test_shape_mismatch_raises(self):
        monitor = FeatureDriftMonitor(make_reference())
        with pytest.raises(ValueError, match="matching"):
            monitor.observe(np.ones((5, 99)), np.ones(5),
                            np.ones(5, dtype=int))

    def test_reset_drops_live_state(self):
        monitor = FeatureDriftMonitor(make_reference(), min_rows=10)
        rng = np.random.default_rng(0)
        monitor.observe(*reference_like_traffic(rng, 50))
        assert monitor.n_rows == 50
        monitor.reset()
        assert monitor.n_rows == 0
        assert not monitor.report().sufficient

    def test_report_is_deterministic_for_identical_traffic(self):
        def run():
            monitor = FeatureDriftMonitor(make_reference(), seed=3)
            rng = np.random.default_rng(5)
            for _ in range(4):
                monitor.observe(*reference_like_traffic(rng, 60))
            return monitor.report().as_dict()

        assert run() == run()

    def test_concurrent_observers_lose_no_rows(self):
        monitor = FeatureDriftMonitor(make_reference(), min_rows=10)
        n_threads, batches, rows = 8, 20, 16

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(batches):
                monitor.observe(*reference_like_traffic(rng, rows))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert monitor.n_rows == n_threads * batches * rows
        report = monitor.report()
        assert report.n_rows == n_threads * batches * rows
        assert all(item.n == report.n_rows for item in report.features)


class TestForBundle:
    def test_for_bundle_uses_manifest_profile(self, trained_em):
        matcher, _, _, test = trained_em
        bundle = matcher.export_bundle()
        monitor = FeatureDriftMonitor.for_bundle(bundle, min_rows=10)
        names = [f"{attribute}__{measure}"
                 for attribute, measure in bundle.plan]
        assert monitor.reference.feature_names == names

    def test_for_bundle_without_profile_raises(self, trained_em):
        from repro.serve import ModelBundle

        native = trained_em[0].export_bundle()
        bare = ModelBundle(native.predictor, plan=native.plan,
                           schema=native.schema,
                           sequence_max_chars=native.sequence_max_chars)
        with pytest.raises(ValueError, match="no reference profile"):
            FeatureDriftMonitor.for_bundle(bare)

    def test_report_as_dict_is_json_ready(self):
        import json

        monitor = FeatureDriftMonitor(make_reference(), min_rows=10)
        rng = np.random.default_rng(0)
        monitor.observe(*reference_like_traffic(rng, 50))
        payload = monitor.report().as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert {"n_rows", "drifted", "features",
                "thresholds"} <= payload.keys()
