"""Tests for hyperparameter types and configuration spaces."""

import pytest

from repro.automl import (
    Categorical,
    ConfigurationSpace,
    Constant,
    UniformFloat,
    UniformInt,
)


@pytest.fixture()
def space():
    s = ConfigurationSpace()
    s.add(Categorical("model", ["tree", "forest"]))
    s.add(UniformFloat("lr", 0.01, 1.0, log=True))
    s.add(UniformInt("n_trees", 10, 100), parent="model",
          parent_values=("forest",))
    s.add(Categorical("criterion", ["gini", "entropy"]), parent="model",
          parent_values=("forest", "tree"))
    return s


class TestHyperparameters:
    def test_categorical_sample_in_choices(self, rng):
        hp = Categorical("c", ["a", "b", "c"])
        assert all(hp.sample(rng) in ("a", "b", "c") for _ in range(20))

    def test_categorical_neighbor_differs(self, rng):
        hp = Categorical("c", ["a", "b"])
        assert hp.neighbor("a", rng) == "b"

    def test_categorical_single_choice_neighbor(self, rng):
        hp = Categorical("c", ["only"])
        assert hp.neighbor("only", rng) == "only"

    def test_categorical_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Categorical("c", [])

    def test_uniform_float_bounds(self, rng):
        hp = UniformFloat("f", 2.0, 5.0)
        samples = [hp.sample(rng) for _ in range(100)]
        assert all(2.0 <= s <= 5.0 for s in samples)

    def test_log_float_covers_decades(self, rng):
        hp = UniformFloat("f", 1e-4, 1.0, log=True)
        samples = [hp.sample(rng) for _ in range(200)]
        assert min(samples) < 1e-3
        assert max(samples) > 0.1

    def test_log_requires_positive_low(self):
        with pytest.raises(ValueError, match="log scale"):
            UniformFloat("f", 0.0, 1.0, log=True)

    def test_float_invalid_range(self):
        with pytest.raises(ValueError, match="low < high"):
            UniformFloat("f", 2.0, 1.0)

    def test_uniform_int_integral(self, rng):
        hp = UniformInt("i", 1, 9)
        samples = [hp.sample(rng) for _ in range(50)]
        assert all(isinstance(s, int) and 1 <= s <= 9 for s in samples)

    def test_int_neighbor_moves(self, rng):
        hp = UniformInt("i", 1, 100)
        assert hp.neighbor(50, rng) != 50

    def test_int_neighbor_stays_in_bounds(self, rng):
        hp = UniformInt("i", 1, 3)
        for _ in range(30):
            assert 1 <= hp.neighbor(1, rng) <= 3

    def test_encode_in_unit_interval(self, rng):
        for hp in (UniformFloat("f", 1.0, 9.0),
                   UniformFloat("g", 0.01, 10.0, log=True),
                   UniformInt("i", 0, 7),
                   Categorical("c", ["x", "y", "z"])):
            value = hp.sample(rng)
            assert 0.0 <= hp.encode(value) <= 1.0

    def test_constant(self, rng):
        hp = Constant("k", 42)
        assert hp.sample(rng) == 42
        assert hp.neighbor(42, rng) == 42
        assert hp.encode(42) == 0.0


class TestConfigurationSpace:
    def test_sample_respects_conditionals(self, space, rng):
        for _ in range(50):
            config = space.sample(rng)
            if config["model"] == "tree":
                assert "n_trees" not in config
            else:
                assert "n_trees" in config
            assert "criterion" in config  # active for both parents

    def test_duplicate_name_rejected(self, space):
        with pytest.raises(ValueError, match="duplicate"):
            space.add(Categorical("model", ["x"]))

    def test_unknown_parent_rejected(self):
        s = ConfigurationSpace()
        with pytest.raises(ValueError, match="unknown parent"):
            s.add(UniformInt("child", 0, 1), parent="ghost",
                  parent_values=("x",))

    def test_neighbor_is_valid_config(self, space, rng):
        for _ in range(50):
            config = space.sample(rng)
            moved = space.neighbor(config, rng)
            # re-validate conditionals
            for name in moved:
                assert space.is_active(name, moved)
            if moved["model"] == "forest":
                assert "n_trees" in moved

    def test_neighbor_repairs_activation(self, rng):
        s = ConfigurationSpace()
        s.add(Categorical("a", ["on", "off"]))
        s.add(UniformInt("b", 0, 9), parent="a", parent_values=("on",))
        config = {"a": "on", "b": 5}
        # Force many moves; whenever a flips to off, b must vanish.
        for _ in range(30):
            moved = s.neighbor(config, rng)
            if moved["a"] == "off":
                assert "b" not in moved
            else:
                assert "b" in moved

    def test_encode_fixed_width(self, space, rng):
        widths = {space.encode(space.sample(rng)).shape for _ in range(20)}
        assert widths == {(4,)}

    def test_encode_inactive_is_minus_one(self, space, rng):
        config = {"model": "tree", "lr": 0.1, "criterion": "gini"}
        vector = space.encode(config)
        names = list(space.hyperparameters)
        assert vector[names.index("n_trees")] == -1.0

    def test_len(self, space):
        assert len(space) == 4
