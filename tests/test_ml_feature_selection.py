"""Tests for univariate scores and feature selectors."""

import numpy as np
import pytest

from repro.ml import (
    SelectKBest,
    SelectPercentile,
    SelectRates,
    TreeFeatureSelector,
    VarianceThreshold,
    chi2,
    f_classif,
)


@pytest.fixture()
def labeled_data(rng):
    """Feature 0 is strongly informative, 1 weakly, 2-4 pure noise."""
    n = 300
    y = rng.integers(0, 2, n)
    X = np.column_stack([
        y * 2.0 + rng.normal(0, 0.3, n),
        y * 0.4 + rng.normal(0, 1.0, n),
        rng.normal(0, 1.0, n),
        rng.normal(0, 1.0, n),
        rng.normal(0, 1.0, n),
    ])
    return X, y


class TestFClassif:
    def test_informative_feature_scores_highest(self, labeled_data):
        X, y = labeled_data
        scores, p_values = f_classif(X, y)
        assert np.argmax(scores) == 0
        assert np.argmin(p_values) == 0

    def test_pvalues_in_range(self, labeled_data):
        X, y = labeled_data
        _, p_values = f_classif(X, y)
        assert np.all((p_values >= 0) & (p_values <= 1))

    def test_constant_feature_worst_pvalue(self, rng):
        X = np.column_stack([np.ones(50), rng.normal(size=50)])
        y = rng.integers(0, 2, 50)
        _, p_values = f_classif(X, y)
        assert p_values[0] == 1.0

    def test_single_class_raises(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="at least 2 classes"):
            f_classif(X, np.zeros(10, dtype=int))


class TestChi2:
    def test_informative_counts(self, rng):
        n = 400
        y = rng.integers(0, 2, n)
        X = np.column_stack([
            y * 3.0,                     # perfectly informative counts
            rng.integers(0, 4, n),       # noise
        ]).astype(float)
        scores, _ = chi2(X, y)
        assert scores[0] > scores[1]

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            chi2(np.asarray([[-1.0]]), np.asarray([0]))

    def test_zero_column_worst_pvalue(self, rng):
        X = np.column_stack([np.zeros(30), rng.random(30)])
        y = rng.integers(0, 2, 30)
        _, p_values = chi2(X, y)
        assert p_values[0] == 1.0


class TestSelectPercentile:
    def test_keeps_expected_count(self, labeled_data):
        X, y = labeled_data
        out = SelectPercentile(percentile=40).fit_transform(X, y)
        assert out.shape[1] == 2

    def test_informative_feature_survives(self, labeled_data):
        X, y = labeled_data
        selector = SelectPercentile(percentile=20).fit(X, y)
        assert selector.support_[0]

    def test_never_empty(self, labeled_data):
        X, y = labeled_data
        out = SelectPercentile(percentile=1).fit_transform(X, y)
        assert out.shape[1] >= 1

    def test_invalid_percentile(self):
        with pytest.raises(ValueError, match="percentile"):
            SelectPercentile(percentile=0)

    def test_chi2_score_func(self, rng):
        X = np.abs(rng.normal(size=(60, 4)))
        y = rng.integers(0, 2, 60)
        out = SelectPercentile(50, score_func="chi2").fit_transform(X, y)
        assert out.shape == (60, 2)

    def test_unknown_score_func(self, labeled_data):
        X, y = labeled_data
        with pytest.raises(ValueError, match="unknown score_func"):
            SelectPercentile(50, score_func="anova").fit(X, y)


class TestSelectKBest:
    def test_k_features(self, labeled_data):
        X, y = labeled_data
        assert SelectKBest(k=3).fit_transform(X, y).shape[1] == 3

    def test_k_capped_at_width(self, labeled_data):
        X, y = labeled_data
        assert SelectKBest(k=50).fit_transform(X, y).shape[1] == X.shape[1]


class TestSelectRates:
    def test_fpr_keeps_informative(self, labeled_data):
        X, y = labeled_data
        selector = SelectRates(alpha=0.01, mode="fpr").fit(X, y)
        assert selector.support_[0]
        # most pure-noise features should be dropped
        assert selector.support_[2:].sum() <= 1

    def test_fdr_and_fwe_run(self, labeled_data):
        X, y = labeled_data
        for mode in ("fdr", "fwe"):
            out = SelectRates(alpha=0.05, mode=mode).fit_transform(X, y)
            assert out.shape[1] >= 1

    def test_fwe_stricter_than_fpr(self, labeled_data):
        X, y = labeled_data
        fpr = SelectRates(alpha=0.2, mode="fpr").fit(X, y).support_.sum()
        fwe = SelectRates(alpha=0.2, mode="fwe").fit(X, y).support_.sum()
        assert fwe <= fpr

    def test_never_empty(self, rng):
        X = rng.normal(size=(50, 5))
        y = rng.integers(0, 2, 50)
        out = SelectRates(alpha=1e-12, mode="fwe").fit_transform(X, y)
        assert out.shape[1] == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="alpha"):
            SelectRates(alpha=0.0)
        with pytest.raises(ValueError, match="mode"):
            SelectRates(mode="bonferroni")


class TestVarianceThreshold:
    def test_drops_constant(self, rng):
        X = np.column_stack([np.ones(30), rng.normal(size=30)])
        out = VarianceThreshold().fit_transform(X)
        assert out.shape[1] == 1

    def test_all_constant_keeps_one(self):
        X = np.ones((10, 3))
        assert VarianceThreshold().fit_transform(X).shape[1] == 1


class TestTreeSelector:
    def test_informative_survives(self, labeled_data):
        X, y = labeled_data
        selector = TreeFeatureSelector(n_estimators=10,
                                       random_state=0).fit(X, y)
        assert selector.support_[0]
        assert selector.transform(X).shape[1] < X.shape[1]
