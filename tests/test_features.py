"""Tests for data-type inference and the Table I / Table II feature plans."""

import math

import numpy as np
import pytest

from repro.data import PairSet, RecordPair, Table
from repro.features import (
    DataType,
    TABLE_I,
    autoem_feature_plan,
    autoem_measures_for,
    infer_column_type,
    infer_schema_types,
    magellan_feature_plan,
    magellan_measures_for,
    make_autoem_features,
    make_magellan_features,
)


class TestTypeInference:
    def test_single_word(self):
        assert infer_column_type(["chicago", "boston"], ["dallas"]) == \
            DataType.SINGLE_WORD

    def test_words_1_5(self):
        assert infer_column_type(["new york city"], ["los angeles"]) == \
            DataType.WORDS_1_5

    def test_words_5_10(self):
        text = ["a b c d e f g", "one two three four five six"]
        assert infer_column_type(text, text) == DataType.WORDS_5_10

    def test_long_text(self):
        text = [" ".join(["word"] * 15)]
        assert infer_column_type(text, text) == DataType.LONG_TEXT

    def test_numeric(self):
        assert infer_column_type([1.5, 2.0], [3.0]) == DataType.NUMERIC

    def test_numeric_strings_count_as_numeric(self):
        assert infer_column_type(["1.5", "2"], ["3"]) == DataType.NUMERIC

    def test_boolean(self):
        assert infer_column_type([True, False], [True]) == DataType.BOOLEAN

    def test_missing_values_ignored(self):
        assert infer_column_type([None, "chicago"], [None]) == \
            DataType.SINGLE_WORD

    def test_all_missing_defaults(self):
        assert infer_column_type([None], [None]) == DataType.WORDS_1_5

    def test_mixed_text_numeric_is_string(self):
        assert infer_column_type(["abc", "1.5"], ["2"]) != DataType.NUMERIC

    def test_is_string_property(self):
        assert DataType.WORDS_5_10.is_string
        assert not DataType.NUMERIC.is_string

    def test_schema_inference(self):
        a = Table("A", ["name", "year"], [["alpha beta", 2001.0]])
        b = Table("B", ["name", "year"], [["gamma", 2002.0]])
        types = infer_schema_types(a, b)
        assert types == {"name": DataType.WORDS_1_5,
                         "year": DataType.NUMERIC}

    def test_schema_mismatch(self):
        a = Table("A", ["x"], [["1"]])
        b = Table("B", ["y"], [["1"]])
        with pytest.raises(ValueError, match="schema mismatch"):
            infer_schema_types(a, b)


class TestFeaturePlans:
    def test_magellan_counts_per_type(self):
        # Table I row counts.
        assert len(TABLE_I[DataType.SINGLE_WORD]) == 6
        assert len(TABLE_I[DataType.WORDS_1_5]) == 8
        assert len(TABLE_I[DataType.WORDS_5_10]) == 5
        assert len(TABLE_I[DataType.LONG_TEXT]) == 2
        assert len(TABLE_I[DataType.NUMERIC]) == 4
        assert len(TABLE_I[DataType.BOOLEAN]) == 1

    def test_autoem_gives_all_16_to_any_string(self):
        for dtype in (DataType.SINGLE_WORD, DataType.WORDS_1_5,
                      DataType.WORDS_5_10, DataType.LONG_TEXT):
            assert len(autoem_measures_for(dtype)) == 16

    def test_autoem_matches_magellan_for_numeric_and_bool(self):
        assert autoem_measures_for(DataType.NUMERIC) == \
            magellan_measures_for(DataType.NUMERIC)
        assert autoem_measures_for(DataType.BOOLEAN) == \
            magellan_measures_for(DataType.BOOLEAN)

    def test_paper_example_counts(self):
        # Section III-B: 2 single-word + 2 long-text attributes.
        types = {"a": DataType.SINGLE_WORD, "b": DataType.SINGLE_WORD,
                 "c": DataType.LONG_TEXT, "d": DataType.LONG_TEXT}
        assert len(magellan_feature_plan(types)) == 6 + 6 + 2 + 2
        assert len(autoem_feature_plan(types)) == 16 * 4

    def test_autoem_always_superset_width(self):
        for dtype in DataType:
            assert len(autoem_measures_for(dtype)) >= \
                len(magellan_measures_for(dtype))


class TestFeatureGenerator:
    @pytest.fixture()
    def pair_set(self):
        a = Table("A", ["name", "price"],
                  [["arts delicatessen", 12.0], ["fenix", None]])
        b = Table("B", ["name", "price"],
                  [["arts deli", 12.5], ["fenix at the argyle", 9.0]])
        return PairSet(a, b, [RecordPair(a[0], b[0], 1),
                              RecordPair(a[1], b[1], 0)])

    def test_matrix_shape(self, pair_set):
        generator = make_autoem_features(pair_set.table_a, pair_set.table_b)
        matrix = generator.transform(pair_set)
        assert matrix.shape == (2, generator.num_features)
        # name(16 string) + price(4 numeric)
        assert generator.num_features == 20

    def test_feature_names_format(self, pair_set):
        generator = make_autoem_features(pair_set.table_a, pair_set.table_b)
        assert "name__jaccard_space" in generator.feature_names
        assert "price__abs_norm" in generator.feature_names
        assert len(generator.feature_names) == generator.num_features

    def test_missing_value_yields_nan(self, pair_set):
        generator = make_autoem_features(pair_set.table_a, pair_set.table_b)
        matrix = generator.transform(pair_set)
        col = generator.feature_names.index("price__abs_norm")
        assert math.isnan(matrix[1, col])
        assert not math.isnan(matrix[0, col])

    def test_magellan_narrower_than_autoem(self, pair_set):
        magellan = make_magellan_features(pair_set.table_a, pair_set.table_b)
        autoem = make_autoem_features(pair_set.table_a, pair_set.table_b)
        assert magellan.num_features < autoem.num_features

    def test_exclude_attributes(self, pair_set):
        generator = make_autoem_features(pair_set.table_a, pair_set.table_b,
                                         exclude_attributes=("price",))
        assert generator.num_features == 16
        assert all(name.startswith("name__")
                   for name in generator.feature_names)

    def test_exclude_everything_raises(self, pair_set):
        with pytest.raises(ValueError, match="empty"):
            make_autoem_features(pair_set.table_a, pair_set.table_b,
                                 exclude_attributes=("name", "price"))

    def test_transform_pair_matches_matrix_row(self, pair_set):
        generator = make_autoem_features(pair_set.table_a, pair_set.table_b)
        matrix = generator.transform(pair_set)
        row = generator.transform_pair(pair_set[0])
        np.testing.assert_array_equal(matrix[0], row)

    def test_similar_pair_scores_higher(self, pair_set):
        generator = make_autoem_features(pair_set.table_a, pair_set.table_b)
        matrix = generator.transform(pair_set)
        col = generator.feature_names.index("name__jaccard_space")
        assert matrix[0, col] > matrix[1, col]
