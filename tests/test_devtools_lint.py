"""The REP linter: every rule's hit and non-hit fixtures, suppression,
baselines, the CLI surface, and the typed-public-API completeness check
that stands in for mypy's ``disallow_untyped_defs`` locally."""

import ast
import io
import json
from pathlib import Path

import pytest

from repro.devtools.base import ImportMap, module_name, parse_module
from repro.devtools.lint import (
    lint_paths,
    load_baseline,
    main,
    run_lint,
    split_by_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Path (relative to the lint root) that puts a fixture inside the
#: features package — in scope for every scoped rule.
IN_SCOPE = "src/repro/features/fixture_mod.py"
#: Path with no ``src`` segment: module is None, scoped rules skip it.
NO_SCOPE = "tests/fixture_mod.py"


def lint_source(tmp_path, source, rel=IN_SCOPE, select=None):
    """Write ``source`` at ``rel`` under a tmp root and lint that file."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    selected = None if select is None else {select}
    return lint_paths([path], select=selected, root=tmp_path)


def codes(violations):
    return [v.code for v in violations]


# -- REP000: unparseable files ------------------------------------------


def test_syntax_error_reports_rep000(tmp_path):
    found = lint_source(tmp_path, "def broken(:\n")
    assert codes(found) == ["REP000"]
    assert "syntax error" in found[0].message


# -- REP001: unseeded randomness ----------------------------------------


def test_rep001_flags_global_numpy_randomness(tmp_path):
    found = lint_source(tmp_path, (
        "import numpy as np\n"
        "x = np.random.choice([1, 2, 3])\n"), select="REP001")
    assert codes(found) == ["REP001"]
    assert "numpy.random.choice" in found[0].message


def test_rep001_flags_stdlib_random(tmp_path):
    found = lint_source(tmp_path, (
        "import random\n"
        "x = random.randint(0, 10)\n"), select="REP001")
    assert codes(found) == ["REP001"]


def test_rep001_allows_seeded_constructors_and_generators(tmp_path):
    found = lint_source(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "rng = np.random.default_rng(0)\n"
        "legacy = np.random.RandomState(0)\n"
        "r = random.Random(0)\n"
        "x = rng.choice([1, 2, 3])\n"), select="REP001")
    assert found == []


def test_rep001_resolves_from_import_aliases(tmp_path):
    found = lint_source(tmp_path, (
        "from numpy import random as npr\n"
        "x = npr.shuffle([1, 2])\n"), select="REP001")
    assert codes(found) == ["REP001"]


def test_rep001_flags_seedless_generator_construction(tmp_path):
    found = lint_source(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "rng = np.random.default_rng()\n"
        "legacy = np.random.RandomState()\n"
        "r = random.Random()\n"), select="REP001")
    assert codes(found) == ["REP001", "REP001", "REP001"]
    assert all("OS entropy" in v.message for v in found)


def test_rep001_allows_keyword_seed_material(tmp_path):
    found = lint_source(tmp_path, (
        "import numpy as np\n"
        "rng = np.random.default_rng(seed=7)\n"
        "seq = np.random.SeedSequence(entropy=1)\n"), select="REP001")
    assert found == []


# -- REP002: wall clock / environment in hashed paths -------------------


def test_rep002_flags_wall_clock_in_scoped_module(tmp_path):
    found = lint_source(tmp_path, (
        "import time\n"
        "stamp = time.time()\n"), select="REP002")
    assert codes(found) == ["REP002"]


def test_rep002_flags_os_environ_reads(tmp_path):
    found = lint_source(tmp_path, (
        "import os\n"
        "home = os.environ['HOME']\n"), select="REP002")
    assert codes(found) == ["REP002"]


def test_rep002_allows_monotonic_clocks(tmp_path):
    found = lint_source(tmp_path, (
        "import time\n"
        "t0 = time.monotonic()\n"
        "t1 = time.perf_counter()\n"), select="REP002")
    assert found == []


def test_rep002_skips_out_of_scope_modules(tmp_path):
    source = "import time\nstamp = time.time()\n"
    # Telemetry code (repro.automl) may read the clock freely...
    assert lint_source(tmp_path, source,
                       rel="src/repro/automl/fixture_mod.py",
                       select="REP002") == []
    # ...and files without a module path (tests) are never in scope.
    assert lint_source(tmp_path, source, rel=NO_SCOPE,
                       select="REP002") == []


# -- REP003: silent broad excepts ---------------------------------------


def test_rep003_flags_silent_broad_except(tmp_path):
    found = lint_source(tmp_path, (
        "try:\n"
        "    work()\n"
        "except Exception:\n"
        "    pass\n"), select="REP003")
    assert codes(found) == ["REP003"]


def test_rep003_flags_bare_except(tmp_path):
    found = lint_source(tmp_path, (
        "try:\n"
        "    work()\n"
        "except:\n"
        "    result = None\n"), select="REP003")
    assert codes(found) == ["REP003"]


def test_rep003_allows_reraise_logging_and_capture(tmp_path):
    found = lint_source(tmp_path, (
        "try:\n"
        "    work()\n"
        "except Exception:\n"
        "    log.warning('failed')\n"
        "try:\n"
        "    work()\n"
        "except Exception:\n"
        "    raise RuntimeError('wrapped')\n"
        "try:\n"
        "    work()\n"
        "except Exception as exc:\n"
        "    results.append(exc)\n"), select="REP003")
    assert found == []


def test_rep003_ignores_narrow_excepts(tmp_path):
    found = lint_source(tmp_path, (
        "try:\n"
        "    work()\n"
        "except ValueError:\n"
        "    pass\n"), select="REP003")
    assert found == []


# -- REP004: pickle-unsafe instance attributes --------------------------


def test_rep004_flags_lambda_on_self(tmp_path):
    found = lint_source(tmp_path, (
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self.fn = lambda x: x + 1\n"), select="REP004")
    assert codes(found) == ["REP004"]
    assert "lambda" in found[0].message


def test_rep004_flags_local_function_on_self(tmp_path):
    found = lint_source(tmp_path, (
        "class Thing:\n"
        "    def __init__(self):\n"
        "        def helper(x):\n"
        "            return x\n"
        "        self.fn = helper\n"), select="REP004")
    assert codes(found) == ["REP004"]


def test_rep004_allows_module_level_functions(tmp_path):
    found = lint_source(tmp_path, (
        "def helper(x):\n"
        "    return x\n"
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self.fn = helper\n"), select="REP004")
    assert found == []


def test_rep004_skips_test_files(tmp_path):
    found = lint_source(tmp_path, (
        "class Fake:\n"
        "    def __init__(self):\n"
        "        self.fn = lambda x: x\n"), rel=NO_SCOPE, select="REP004")
    assert found == []


# -- REP005: float equality ---------------------------------------------


def test_rep005_flags_float_literal_equality(tmp_path):
    found = lint_source(tmp_path, (
        "def check(x):\n"
        "    return x == 1.0 or x != 0.5\n"), select="REP005")
    assert codes(found) == ["REP005", "REP005"]


def test_rep005_ignores_int_and_ordering_comparisons(tmp_path):
    found = lint_source(tmp_path, (
        "def check(x):\n"
        "    return x == 1 or x < 1.0 or x >= 0.5\n"), select="REP005")
    assert found == []


# -- REP006: mutable defaults -------------------------------------------


def test_rep006_flags_mutable_defaults(tmp_path):
    found = lint_source(tmp_path, (
        "def f(items=[], table={}, bag=set(), counts=dict()):\n"
        "    return items, table, bag, counts\n"), select="REP006")
    assert codes(found) == ["REP006"] * 4


def test_rep006_allows_immutable_defaults(tmp_path):
    found = lint_source(tmp_path, (
        "def f(items=None, names=(), label='x', n=3):\n"
        "    return items or []\n"), select="REP006")
    assert found == []


# -- REP008: RunLog._fh lock bypass -------------------------------------


def test_rep008_flags_fh_access_outside_runner(tmp_path):
    found = lint_source(tmp_path, (
        "def tail(log):\n"
        "    log._fh.write('{}\\n')\n"
        "    return log._fh\n"), select="REP008")
    assert codes(found) == ["REP008"] * 2
    assert "bypasses the RunLog write lock" in found[0].message


def test_rep008_exempts_the_defining_module(tmp_path):
    found = lint_source(tmp_path, (
        "class RunLog:\n"
        "    def write(self, record):\n"
        "        self._fh.write('{}\\n')\n"),
        rel="src/repro/automl/runner.py", select="REP008")
    assert found == []


def test_rep008_out_of_scope_outside_repro(tmp_path):
    found = lint_source(tmp_path, (
        "def tail(log):\n"
        "    return log._fh\n"), rel=NO_SCOPE, select="REP008")
    assert found == []


def test_rep008_allows_locked_write_calls(tmp_path):
    found = lint_source(tmp_path, (
        "def emit(log, record):\n"
        "    log.write(record)\n"
        "    log.close()\n"), select="REP008")
    assert found == []


# -- suppressions -------------------------------------------------------


def test_inline_suppression_silences_named_code(tmp_path):
    found = lint_source(tmp_path, (
        "def check(x):\n"
        "    return x == 1.0  "
        "# repro-lint: disable=REP005 - exact by construction\n"),
        select="REP005")
    assert found == []


def test_inline_suppression_is_per_code(tmp_path):
    found = lint_source(tmp_path, (
        "def check(x):\n"
        "    return x == 1.0  # repro-lint: disable=REP001\n"),
        select="REP005")
    assert codes(found) == ["REP005"]


def test_disable_all_silences_every_rule(tmp_path):
    found = lint_source(tmp_path, (
        "import numpy as np\n"
        "x = np.random.rand() == 0.5  # repro-lint: disable=all\n"))
    assert found == []


# -- baseline workflow --------------------------------------------------


def test_baseline_round_trip_and_line_shift_stability(tmp_path):
    source = "def check(x):\n    return x == 1.0\n"
    found = lint_source(tmp_path, source, select="REP005")
    baseline_path = tmp_path / ".repro-lint-baseline"
    write_baseline(baseline_path, found)
    entries = load_baseline(baseline_path)
    assert sum(entries.values()) == 1

    # Shifting the offending line down must not invalidate the entry:
    # fingerprints hash line *text*, not line numbers.
    shifted = "# a new leading comment\n\n" + source
    refound = lint_source(tmp_path, shifted, select="REP005")
    new, matched, stale = split_by_baseline(refound, entries)
    assert new == [] and len(matched) == 1 and not stale


def test_split_by_baseline_reports_new_and_stale(tmp_path):
    source = "def check(x):\n    return x == 1.0\n"
    found = lint_source(tmp_path, source, select="REP005")
    baseline_path = tmp_path / ".repro-lint-baseline"
    write_baseline(baseline_path, found)
    entries = load_baseline(baseline_path)

    changed = "def check(x):\n    return x == 2.5\n"
    refound = lint_source(tmp_path, changed, select="REP005")
    new, matched, stale = split_by_baseline(refound, entries)
    assert len(new) == 1 and matched == [] and sum(stale.values()) == 1


def test_run_lint_exit_codes_follow_baseline(tmp_path):
    path = tmp_path / "src/repro/features/fixture_mod.py"
    path.parent.mkdir(parents=True)
    path.write_text("def check(x):\n    return x == 1.0\n")
    out = io.StringIO()
    assert run_lint([str(path)], root=tmp_path, out=out) == 1
    assert "REP005" in out.getvalue()

    # Snapshot the finding, then the same run passes.
    assert run_lint([str(path)], root=tmp_path, update_baseline=True,
                    out=io.StringIO()) == 0
    assert run_lint([str(path)], root=tmp_path, out=io.StringIO()) == 0
    # --no-baseline reports it again.
    assert run_lint([str(path)], root=tmp_path, no_baseline=True,
                    out=io.StringIO()) == 1


def test_run_lint_json_format(tmp_path):
    path = tmp_path / "src/repro/features/fixture_mod.py"
    path.parent.mkdir(parents=True)
    path.write_text("def check(x):\n    return x == 1.0\n")
    out = io.StringIO()
    code = run_lint([str(path)], root=tmp_path, output_format="json",
                    out=out)
    payload = json.loads(out.getvalue())
    assert code == 1
    assert [v["code"] for v in payload["new"]] == ["REP005"]
    assert payload["baselined"] == []


def test_cli_list_rules_exits_zero(capsys):
    assert main(["--list-rules"]) == 0
    text = capsys.readouterr().out
    for code in ("REP001", "REP002", "REP003", "REP004", "REP005",
                 "REP006", "REP007", "REP009", "REP010", "REP011"):
        assert code in text


def test_unknown_select_code_exits_2(tmp_path, capsys):
    path = tmp_path / IN_SCOPE
    path.parent.mkdir(parents=True)
    path.write_text("x = 1\n")
    err = io.StringIO()
    assert run_lint([str(path)], root=tmp_path, select="REP999",
                    out=io.StringIO(), err=err) == 2
    message = err.getvalue()
    assert "unknown rule code" in message and "REP999" in message
    assert "--list-rules" in message
    # Mixed known/unknown still refuses, naming only the unknown ones.
    err = io.StringIO()
    assert run_lint([str(path)], root=tmp_path, select="REP005,BOGUS",
                    out=io.StringIO(), err=err) == 2
    assert "BOGUS" in err.getvalue()
    assert "REP005" not in err.getvalue().replace("BOGUS", "")
    # And through the argparse surface.
    assert main([str(path), "--select", "NOPE"]) == 2


def test_write_baseline_on_clean_tree_is_empty_and_stable(tmp_path):
    path = tmp_path / IN_SCOPE
    path.parent.mkdir(parents=True)
    path.write_text("CLEAN = 1\n")
    baseline_path = tmp_path / ".repro-lint-baseline"
    assert run_lint([str(path)], root=tmp_path, update_baseline=True,
                    out=io.StringIO()) == 0
    assert baseline_path.exists()
    first = baseline_path.read_text(encoding="utf-8")
    assert load_baseline(baseline_path) == {}
    # A second snapshot is byte-identical: the workflow is idempotent.
    assert run_lint([str(path)], root=tmp_path, update_baseline=True,
                    out=io.StringIO()) == 0
    assert baseline_path.read_text(encoding="utf-8") == first


# -- SARIF output -------------------------------------------------------


def test_sarif_output_validates_github_shape(tmp_path):
    path = tmp_path / IN_SCOPE
    path.parent.mkdir(parents=True)
    path.write_text("def check(x):\n    return x == 1.0\n")
    out = io.StringIO()
    code = run_lint([str(path)], root=tmp_path, output_format="sarif",
                    out=out)
    assert code == 1
    log = json.loads(out.getvalue())

    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    [run] = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert "informationUri" in driver
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert len(rule_ids) == len(set(rule_ids))
    for required in ("REP005", "REP009", "REP010", "REP011"):
        assert required in rule_ids

    [result] = run["results"]
    assert result["ruleId"] == "REP005"
    assert driver["rules"][result["ruleIndex"]]["id"] == "REP005"
    assert result["level"] == "error"
    assert result["message"]["text"]
    [location] = result["locations"]
    physical = location["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == IN_SCOPE
    assert physical["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert physical["region"]["startLine"] == 2
    assert physical["region"]["startColumn"] >= 1
    assert "reproLintFingerprint/v1" in result["partialFingerprints"]


def test_sarif_clean_run_exits_zero_with_empty_results(tmp_path):
    path = tmp_path / IN_SCOPE
    path.parent.mkdir(parents=True)
    path.write_text("CLEAN = 1\n")
    out = io.StringIO()
    assert run_lint([str(path)], root=tmp_path, output_format="sarif",
                    out=out) == 0
    log = json.loads(out.getvalue())
    assert log["runs"][0]["results"] == []


# -- perf budget --------------------------------------------------------


def test_whole_program_pass_fits_time_budget():
    """The call-graph rules must stay fast enough to gate CI: a full
    project pass over ``src/`` in under 10 seconds."""
    import time as _time

    start = _time.perf_counter()
    out = io.StringIO()
    run_lint([str(REPO_ROOT / "src")], root=REPO_ROOT, no_baseline=True,
             select="REP009,REP010,REP011", out=out)
    elapsed = _time.perf_counter() - start
    assert elapsed < 10.0, (
        f"whole-program lint took {elapsed:.1f}s (budget 10s)")


# -- plumbing -----------------------------------------------------------


def test_module_name_resolution(tmp_path):
    assert module_name(
        tmp_path / "src/repro/features/cache.py") == "repro.features.cache"
    assert module_name(
        tmp_path / "src/repro/features/__init__.py") == "repro.features"
    assert module_name(tmp_path / "tests/test_x.py") is None


def test_import_map_resolution():
    tree = ast.parse(
        "import numpy as np\n"
        "from time import time\n"
        "np.random.choice([1])\n"
        "self.rng.choice([1])\n"
        "time()\n")
    imports = ImportMap.of(tree)
    calls = [n.func for n in ast.walk(tree) if isinstance(n, ast.Call)]
    resolved = {imports.resolve_call(f) for f in calls}
    assert resolved == {"numpy.random.choice", "time.time", None}


def test_parse_module_returns_context_for_valid_source(tmp_path):
    path = tmp_path / "src/repro/mod.py"
    path.parent.mkdir(parents=True)
    path.write_text("x = 1\n")
    ctx, error = parse_module(path, "src/repro/mod.py")
    assert error is None
    assert ctx.module == "repro.mod"
    assert ctx.line_text(1) == "x = 1"


# -- the repo itself ----------------------------------------------------


def test_repo_lint_is_clean_with_baseline():
    """``repro lint src tests benchmarks`` gates CI; it must pass here."""
    out = io.StringIO()
    code = run_lint([], root=REPO_ROOT, out=out)
    assert code == 0, f"repo lint failed:\n{out.getvalue()}"


def test_seeding_a_violation_is_caught(tmp_path):
    """The acceptance scenario: a bare np.random call fails the lint."""
    victim = tmp_path / "src/repro/features/columnar.py"
    victim.parent.mkdir(parents=True)
    victim.write_text(
        (REPO_ROOT / "src/repro/features/columnar.py").read_text()
        + "\n_BAD = np.random.choice([1, 2, 3])\n")
    out = io.StringIO()
    code = run_lint([str(victim)], root=tmp_path, no_baseline=True, out=out)
    assert code == 1
    assert "REP001" in out.getvalue()


# -- typed public API ---------------------------------------------------

#: Packages pinned to mypy's disallow_untyped_defs in pyproject.toml.
STRICT_PACKAGES = ("blocking", "data", "features", "similarity", "serve",
                   "monitor", "resolve", "devtools")
#: Single modules (not packages) held to the same bar.
STRICT_MODULES = ("concurrency",)


def _unannotated_defs(tree):
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg not in ("self", "cls") and arg.annotation is None:
                yield f"{node.name}:{node.lineno} parameter {arg.arg}"
        for extra in (args.vararg, args.kwarg):
            if extra is not None and extra.annotation is None:
                yield f"{node.name}:{node.lineno} parameter *{extra.arg}"
        if node.returns is None and node.name != "__init__":
            yield f"{node.name}:{node.lineno} return type"


@pytest.mark.parametrize("target", STRICT_PACKAGES + STRICT_MODULES)
def test_strict_packages_are_fully_annotated(target):
    """Local stand-in for the CI mypy gate (mypy is not vendored): every
    def in the strict packages carries complete annotations."""
    base = REPO_ROOT / "src/repro" / target
    paths = (sorted(base.rglob("*.py")) if base.is_dir()
             else [base.with_suffix(".py")])
    missing = []
    for path in paths:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for item in _unannotated_defs(tree):
            missing.append(f"{path.relative_to(REPO_ROOT)}: {item}")
    assert missing == [], (
        "unannotated defs in a mypy-strict package:\n" + "\n".join(missing))


def test_mypy_config_covers_strict_packages():
    """pyproject's strict override must name every package the
    annotation test enforces (keep the two lists in lockstep)."""
    config = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    for package in STRICT_PACKAGES:
        assert f'"repro.{package}.*"' in config
    for module in STRICT_MODULES:
        assert f'"repro.{module}"' in config
    assert "disallow_untyped_defs = true" in config
