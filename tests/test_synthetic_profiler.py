"""Tests for the benchmark difficulty profiler."""

import pytest

from repro.data.synthetic import load_benchmark, profile_benchmark


@pytest.fixture(scope="module")
def easy_profile():
    return profile_benchmark(load_benchmark("fodors_zagats", seed=4,
                                            scale=0.4))


@pytest.fixture(scope="module")
def hard_profile():
    return profile_benchmark(load_benchmark("abt_buy", seed=4, scale=0.1))


class TestAttributeProfiles:
    def test_one_profile_per_attribute(self, easy_profile):
        assert len(easy_profile.attributes) == 6

    def test_missing_rates_in_range(self, hard_profile):
        for attr in hard_profile.attributes:
            assert 0.0 <= attr.missing_rate <= 1.0

    def test_hard_dataset_has_missing_values(self, hard_profile):
        assert max(a.missing_rate for a in hard_profile.attributes) > 0.05

    def test_long_text_detected(self, hard_profile):
        by_name = {a.name: a for a in hard_profile.attributes}
        assert by_name["description"].mean_words > 10

    def test_distinct_rate_bounds(self, easy_profile):
        for attr in easy_profile.attributes:
            assert 0.0 < attr.distinct_rate <= 1.0


class TestSeparability:
    def test_positive_rate_recorded(self, easy_profile):
        assert easy_profile.positive_rate == pytest.approx(110 / 946,
                                                           abs=0.05)

    def test_positives_more_similar_on_best_axis(self, easy_profile):
        assert easy_profile.best_gap > 0.2

    def test_difficulty_ordering(self, easy_profile, hard_profile):
        """The generated tiers are real: the hard dataset's best single
        similarity axis separates matches far less than the easy one's."""
        assert hard_profile.best_gap < easy_profile.best_gap

    def test_text_report(self, easy_profile):
        text = easy_profile.to_text()
        assert "Fodors-Zagats" in text
        assert "separability" in text

    def test_invalid_sample_size(self):
        benchmark = load_benchmark("fodors_zagats", seed=1, scale=0.2)
        with pytest.raises(ValueError, match="sample_size"):
            profile_benchmark(benchmark, sample_size=0)
