"""Unit tests for record fusion and the cluster-quality metrics."""

from pathlib import Path

import numpy as np
import pytest

from repro.data.table import Record
from repro.resolve import (
    ALL_RESOLVERS,
    AttributeResolver,
    RecordFusion,
    adjusted_rand_index,
    evaluate_clustering,
    make_resolver,
    pairwise_cluster_pairs,
    seeded_choice,
)


def record(record_id, **attrs):
    return Record(record_id, list(attrs), list(attrs.values()))


class TestResolvers:
    def test_registry_names_unique_and_concrete(self):
        names = [cls.name for cls in ALL_RESOLVERS]
        assert len(names) == len(set(names))
        assert "base" not in names
        rng = np.random.default_rng(0)
        for cls in ALL_RESOLVERS:
            assert issubclass(cls, AttributeResolver)
            assert cls().resolve(["x", "y", "y"], rng) is not None

    def test_make_resolver(self):
        assert make_resolver("longest").name == "longest"
        with pytest.raises(ValueError, match="unknown resolver"):
            make_resolver("nope")

    def test_longest(self):
        rng = np.random.default_rng(0)
        assert make_resolver("longest").resolve(
            ["ab", "abcd", "x"], rng) == "abcd"

    def test_most_frequent(self):
        rng = np.random.default_rng(0)
        assert make_resolver("most_frequent").resolve(
            ["x", "y", "y"], rng) == "y"

    def test_numeric_median_ignores_junk_and_bools(self):
        rng = np.random.default_rng(0)
        resolver = make_resolver("numeric_median")
        assert resolver.resolve([10, "20", "n/a", 30],
                                rng) == pytest.approx(20.0)
        assert resolver.resolve([True, 5], rng) == pytest.approx(5.0)
        # nothing numeric → seeded fallback still resolves
        assert resolver.resolve(["a", "b"], rng) in ("a", "b")

    def test_newest_takes_last_value(self):
        rng = np.random.default_rng(0)
        assert make_resolver("newest").resolve(["old", "new"],
                                               rng) == "new"

    def test_seeded_choice_is_order_free(self):
        draws_a = [seeded_choice(["x", "y", "z"],
                                 np.random.default_rng(s))
                   for s in range(20)]
        draws_b = [seeded_choice(["z", "x", "y"],
                                 np.random.default_rng(s))
                   for s in range(20)]
        assert draws_a == draws_b
        with pytest.raises(ValueError, match="at least one"):
            seeded_choice([], np.random.default_rng(0))


class TestRecordFusion:
    def test_union_schema_and_per_attribute_overrides(self):
        fusion = RecordFusion(default="most_frequent",
                              per_attribute={"price": "numeric_median",
                                             "name": "longest"})
        golden = fusion.fuse("a:1", [
            record(1, name="Acme", price="10", city="NYC"),
            record(2, name="Acme Corporation", price=30),
            record(3, name="Acme", price=20, city="NYC"),
        ])
        assert golden == {"name": "Acme Corporation", "price": 20.0,
                          "city": "NYC"}

    def test_all_none_attribute_fuses_to_none(self):
        golden = RecordFusion().fuse("a:1", [record(1, x=None, y="v"),
                                             record(2, x=None, y="v")])
        assert golden == {"x": None, "y": "v"}

    def test_empty_entity_rejected(self):
        with pytest.raises(ValueError, match="no records"):
            RecordFusion().fuse("a:1", [])

    def test_tie_break_depends_only_on_entity_attribute_seed(self):
        # a pure tie: outcome must be identical across record orders
        # and across which other entities were fused first
        records = [record(1, v="x"), record(2, v="y")]
        fusion = RecordFusion(seed=3)
        first = fusion.fuse("a:1", records)
        second = fusion.fuse("a:1", list(reversed(records)))
        assert first == second
        fusion.fuse("a:999", [record(7, v="p"), record(8, v="q")])
        assert fusion.fuse("a:1", records) == first

    def test_describe_and_repr(self):
        fusion = RecordFusion(per_attribute={"price": "numeric_median"})
        assert fusion.describe() == {"*": "most_frequent",
                                     "price": "numeric_median"}
        assert "most_frequent" in repr(fusion)


class TestPairwiseClusterPairs:
    def test_linkage_counts_cross_side_pairs_only(self):
        clusters = [(("a", 1), ("a", 2), ("b", 7)), (("a", 3),)]
        assert pairwise_cluster_pairs(clusters) == {(1, 7), (2, 7)}

    def test_dedup_counts_unordered_pairs_once(self):
        clusters = [(("a", 1), ("a", 2), ("a", 3))]
        assert pairwise_cluster_pairs(clusters, "a", "a") == \
            {("1", "2"), ("1", "3"), ("2", "3")}


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        labels = np.array(["x", "x", "y", "z"])
        assert adjusted_rand_index(labels, labels) == \
            pytest.approx(1.0)

    def test_degenerate_partitions(self):
        singletons = np.arange(4)
        assert adjusted_rand_index(singletons,
                                   singletons) == pytest.approx(1.0)
        assert adjusted_rand_index(np.array([]),
                                   np.array([])) == pytest.approx(1.0)

    def test_disagreement_scores_below_one(self):
        gold = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([0, 1, 0, 1, 2, 2])
        assert adjusted_rand_index(gold, pred) < 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            adjusted_rand_index(np.array([0, 1]), np.array([0]))


class TestEvaluateClustering:
    def test_perfect_clustering(self):
        components = {("a", 1): (("a", 1), ("b", 1)),
                      ("a", 2): (("a", 2),), ("b", 9): (("b", 9),)}
        report = evaluate_clustering(components, {(1, 1)})
        assert report.pairwise_precision == pytest.approx(1.0)
        assert report.pairwise_recall == pytest.approx(1.0)
        assert report.pairwise_f1 == pytest.approx(1.0)
        assert report.adjusted_rand_index == pytest.approx(1.0)
        assert report.n_entities == 3
        assert sum(report.cluster_sizes.values()) == 3

    def test_over_merge_hurts_precision_not_recall(self):
        components = {("a", 1): (("a", 1), ("a", 2), ("b", 1), ("b", 2))}
        report = evaluate_clustering(components, {(1, 1), (2, 2)})
        assert report.pairwise_recall == pytest.approx(1.0)
        assert report.pairwise_precision == pytest.approx(0.5)
        assert report.adjusted_rand_index < 1.0

    def test_empty_gold_is_vacuously_perfect(self):
        report = evaluate_clustering({("a", 1): (("a", 1),)}, set())
        assert report.pairwise_f1 == pytest.approx(1.0)
        assert report.n_gold_pairs == 0
        assert report.to_dict()["n_entities"] == 1


class TestRegistryConformance:
    """The resolver registry must satisfy its own REP007 conventions."""

    SRC = Path(__file__).resolve().parent.parent / "src"

    def test_real_fusion_module_is_conformant(self):
        from repro.devtools.conformance import check_resolver_registry

        path = self.SRC / "repro" / "resolve" / "fusion.py"
        assert check_resolver_registry(path) == []

    def test_checker_catches_broken_registries(self, tmp_path):
        from repro.devtools.conformance import check_resolver_registry

        bad = tmp_path / "fusion.py"
        bad.write_text(
            "class AttributeResolver:\n"
            "    name = 'base'\n"
            "    def resolve(self, values, rng):\n"
            "        raise NotImplementedError\n"
            "class NoName(AttributeResolver):\n"
            "    def resolve(self, values, rng):\n"
            "        return values[0]\n"
            "class Dupe1(AttributeResolver):\n"
            "    name = 'dupe'\n"
            "    def resolve(self, values, rng):\n"
            "        return values[0]\n"
            "class Dupe2(AttributeResolver):\n"
            "    name = 'dupe'\n"
            "    def resolve(self, values, rng):\n"
            "        return values[-1]\n"
            "class Abstract(AttributeResolver):\n"
            "    name = 'abstract'\n"
            "class Loner:\n"
            "    name = 'loner'\n"
            "    def resolve(self, values, rng):\n"
            "        return values[0]\n"
            "ALL_RESOLVERS = (NoName, Dupe1, Dupe2, Abstract, Loner,\n"
            "                 Ghost)\n",
            encoding="utf-8")
        violations = check_resolver_registry(bad)
        messages = "\n".join(v.message for v in violations)
        assert "NoName lacks its own class-level string `name`" in messages
        assert "duplicate resolver name 'dupe'" in messages
        assert "Abstract neither defines nor inherits" in messages
        assert "Loner does not subclass AttributeResolver" in messages
        assert "Ghost is not a class defined" in messages
        assert all(v.code == "REP007" for v in violations)

    def test_checker_flags_missing_registry(self, tmp_path):
        from repro.devtools.conformance import check_resolver_registry

        empty = tmp_path / "fusion.py"
        empty.write_text("x = 1\n", encoding="utf-8")
        violations = check_resolver_registry(empty)
        assert any("no ALL_RESOLVERS registry" in v.message
                   for v in violations)

    def test_lint_paths_dispatches_on_the_anchor(self, tmp_path):
        from repro.devtools.lint import lint_paths

        bad = tmp_path / "repro" / "resolve"
        bad.mkdir(parents=True)
        target = bad / "fusion.py"
        target.write_text("ALL_RESOLVERS = (Ghost,)\n", encoding="utf-8")
        violations = lint_paths([target], root=tmp_path)
        assert any(v.code == "REP007" and "Ghost" in v.message
                   for v in violations)
