"""Tests for the benchmark generator and dataset specs."""

import numpy as np
import pytest

from repro.data import MATCH, NON_MATCH
from repro.data.synthetic import (
    ALL_DATASETS,
    DATASET_SPECS,
    EASY_LARGE,
    EASY_SMALL,
    HARD_LARGE,
    load_benchmark,
)


class TestSpecs:
    def test_eight_datasets(self):
        assert len(DATASET_SPECS) == 8
        assert set(ALL_DATASETS) == set(DATASET_SPECS)

    def test_difficulty_tiers_cover_all(self):
        assert set(EASY_SMALL) | set(EASY_LARGE) | set(HARD_LARGE) == \
            set(ALL_DATASETS)

    def test_table3_pair_counts(self):
        # Exact Table III numbers.
        expected = {
            "beeradvo_ratebeer": (450, 68, 4),
            "fodors_zagats": (946, 110, 6),
            "itunes_amazon": (539, 132, 8),
            "dblp_acm": (12363, 2220, 4),
            "dblp_scholar": (28707, 5347, 4),
            "amazon_google": (11460, 1167, 3),
            "walmart_amazon": (10242, 962, 5),
            "abt_buy": (9575, 1028, 3),
        }
        for name, (total, positive, n_attr) in expected.items():
            spec = DATASET_SPECS[name]
            assert spec.total_pairs == total, name
            assert spec.positive_pairs == positive, name
            assert len(spec.factory.attributes) == n_attr, name

    def test_scaled_spec(self):
        spec = DATASET_SPECS["abt_buy"].scaled(0.1)
        assert spec.total_pairs == pytest.approx(958, abs=2)
        assert spec.positive_pairs == pytest.approx(103, abs=2)

    def test_scaled_invalid(self):
        with pytest.raises(ValueError, match="scale must be positive"):
            DATASET_SPECS["abt_buy"].scaled(0)


class TestGeneration:
    def test_pair_counts_match_spec(self, small_benchmark):
        spec = small_benchmark.spec
        assert len(small_benchmark.pairs) == spec.total_pairs
        assert small_benchmark.pairs.num_positive == spec.positive_pairs

    def test_all_pairs_labeled(self, small_benchmark):
        assert small_benchmark.pairs.is_labeled

    def test_positives_reference_same_entity(self, small_benchmark):
        for pair in small_benchmark.pairs:
            if pair.label == MATCH:
                assert pair.left.record_id == pair.right.record_id

    def test_negatives_reference_different_entities(self, small_benchmark):
        for pair in small_benchmark.pairs:
            if pair.label == NON_MATCH:
                assert pair.left.record_id != pair.right.record_id

    def test_no_duplicate_pairs(self, small_benchmark):
        keys = [p.key for p in small_benchmark.pairs]
        assert len(keys) == len(set(keys))

    def test_determinism(self):
        b1 = load_benchmark("fodors_zagats", seed=3, scale=0.2)
        b2 = load_benchmark("fodors_zagats", seed=3, scale=0.2)
        assert [p.key for p in b1.pairs] == [p.key for p in b2.pairs]
        assert [r.values for r in b1.table_a] == \
            [r.values for r in b2.table_a]

    def test_different_seeds_differ(self):
        b1 = load_benchmark("fodors_zagats", seed=3, scale=0.2)
        b2 = load_benchmark("fodors_zagats", seed=4, scale=0.2)
        assert [r.values for r in b1.table_a] != \
            [r.values for r in b2.table_a]

    def test_schema_matches_factory(self, small_benchmark):
        spec = small_benchmark.spec
        assert small_benchmark.table_a.columns == spec.factory.attributes
        assert small_benchmark.table_b.columns == spec.factory.attributes

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("nonexistent")

    def test_splits_partition(self, small_benchmark):
        train, valid, test = small_benchmark.splits(seed=0)
        assert len(train) + len(valid) + len(test) == \
            len(small_benchmark.pairs)
        for fold in (train, valid, test):
            assert fold.num_positive > 0

    def test_summary_fields(self, small_benchmark):
        summary = small_benchmark.summary()
        assert summary["dataset"] == "Fodors-Zagats"
        assert summary["num_attributes"] == 6

    def test_hard_dataset_has_missing_values(self, hard_benchmark):
        has_missing = any(v is None for record in hard_benchmark.table_b
                          for v in record.values)
        assert has_missing

    def test_positive_exceeding_total_raises(self):
        from repro.data.synthetic.generator import BenchmarkGenerator
        spec = DATASET_SPECS["abt_buy"].scaled(0.05)
        bad = type(spec)(
            name=spec.name, factory=spec.factory,
            attribute_kinds=spec.attribute_kinds, total_pairs=10,
            positive_pairs=50, hard_negative_rate=0.5,
            profile_a=spec.profile_a, profile_b=spec.profile_b)
        with pytest.raises(ValueError, match="exceeds total"):
            BenchmarkGenerator(bad).generate()


class TestDifficultyOrdering:
    def test_hard_negatives_are_more_similar(self):
        """Sibling negatives must look more like matches than random ones."""
        from repro.similarity import score
        benchmark = load_benchmark("walmart_amazon", seed=2, scale=0.05)
        positives, negatives = [], []
        for pair in benchmark.pairs:
            v1 = pair.left.get("title")
            v2 = pair.right.get("title")
            if v1 is None or v2 is None:
                continue
            sim = score("jaccard_space", v1, v2)
            (positives if pair.label == MATCH else negatives).append(sim)
        # positives similar on average, but negatives overlap their range
        assert np.mean(positives) > np.mean(negatives)
        assert max(negatives) > np.mean(positives) - 0.2
