"""Tier-1 smoke of ``benchmarks/bench_resolve.py --check``.

Runs the bench end to end at small scale: workload generation, the
incremental-vs-batch parity assertion, the cluster-quality gates and
report writing all execute on every test run.  The 10x speedup gate
only applies at full scale (see ``FULL_SCALE`` in the bench), so this
stays fast and machine-independent; the strict check is the opt-in
perf marker in ``benchmarks/test_bench_resolve.py``.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from bench_resolve import FULL_SCALE, build_decisions, main  # noqa: E402


def test_check_mode_passes_at_smoke_scale(tmp_path):
    out = tmp_path / "bench.json"
    assert main(["--decisions", "800", "--batch", "100",
                 "--output", str(out), "--check"]) == 0
    report = json.loads(out.read_text())
    assert report["workload"]["n_decisions"] == 800 < FULL_SCALE
    assert report["parity"] is True
    assert report["raw_component_sanity"] is True
    assert report["quality"]["pairwise_f1"] >= 0.99
    assert report["incremental"]["n_batches"] == 8
    assert report["incremental"]["n_entities"] == \
        report["full_recluster"]["n_entities"]


def test_workload_is_deterministic():
    first, gold_first = build_decisions(400, seed=3)
    second, gold_second = build_decisions(400, seed=3)
    assert first == second
    assert gold_first == gold_second == \
        {pair for i in range(100)
         for pair in [(2 * i, 2 * i), (2 * i, 2 * i + 1),
                      (2 * i + 1, 2 * i), (2 * i + 1, 2 * i + 1)]}
    assert sum(decision.matched for decision in first) == 300
