"""The closed loop, end to end: train → export (reference profile) →
serve → detect drift → trigger → retrain → shadow → promote → serve the
new champion.  Plus the MonitorLog replay-determinism contract."""

import pytest

from repro.core import AutoMLEM
from repro.monitor import (
    DriftTrigger,
    FeatureDriftMonitor,
    MonitorLog,
    MonitorStatus,
    RetrainPlan,
    ShadowEvaluator,
    default_policies,
    deterministic_view,
    drifted_pairs,
    evaluate_policies,
    read_monitor_log,
    request_batches,
)
from repro.serve import MatchService, ModelRegistry, StreamMatcher


def serve_batches(matcher, pairs, *, n_batches=8, batch_pairs=16, seed=0):
    for batch in request_batches(pairs, batch_pairs, n_batches=n_batches,
                                 seed=seed):
        matcher.submit(batch)


class TestClosedLoop:
    def test_train_drift_retrain_promote(self, small_benchmark, tmp_path):
        train, valid, test = small_benchmark.splits(seed=0)

        # 1. Train the champion with a run log (the resume point) and
        #    export it; export_bundle embeds the reference profile.
        run_log = tmp_path / "runs" / "champion.jsonl"
        run_log.parent.mkdir()
        champion = AutoMLEM(n_iterations=1, forest_size=4, seed=0,
                            run_log=run_log)
        champion.fit(train, valid)
        bundle = champion.export_bundle()
        assert bundle.reference_profile is not None

        registry = ModelRegistry(tmp_path / "registry")
        assert registry.register(bundle, "em") == "v0001"

        # 2. Control traffic from the reference distribution stays
        #    quiet — no false alarm.  (The reference profiles
        #    train+valid, so valid-set traffic is the matched control.)
        control = FeatureDriftMonitor.for_bundle(bundle, min_rows=50)
        serve_batches(StreamMatcher(registry.get("em"), monitor=control),
                      valid)
        assert control.report().sufficient
        assert not control.report().drifted

        # 3. The same traffic with a corrupted probe side is flagged.
        monitor = FeatureDriftMonitor.for_bundle(bundle, min_rows=50)
        serve_batches(StreamMatcher(registry.get("em"), monitor=monitor),
                      drifted_pairs(valid, factor=1.0, seed=1))
        report = monitor.report()
        assert report.drifted
        assert report.drifted_features

        # 4. The drift policy turns the report into a retrain plan that
        #    points back at the champion's run log, and the plan
        #    round-trips through disk (the handoff artifact).
        plan = evaluate_policies(default_policies(),
                                 MonitorStatus(drift=report),
                                 resume_from=str(run_log))
        assert plan is not None and plan.policy == "drift"
        plan = RetrainPlan.load(plan.save(tmp_path / "plan.json"))
        assert plan.resume_from == str(run_log)

        # 5. Retrain a challenger from the plan: AutoMLEM consumes
        #    resume_from directly, warm-starting from the champion run.
        challenger = AutoMLEM(forest_size=4, seed=1,
                              **plan.automl_kwargs(n_iterations=1))
        challenger.fit(train, valid)
        challenger_bundle = challenger.export_bundle()
        assert registry.register(challenger_bundle, "em") == "v0002"
        registry.promote("em", "v0001")  # champion keeps serving

        # 6. Shadow-evaluate the challenger on live traffic, then
        #    promote: one atomic LATEST flip.
        evaluator = ShadowEvaluator.from_registry(
            registry, "em", "v0002", sample_rate=1.0,
            log=tmp_path / "monitor.jsonl")
        serve_batches(StreamMatcher(registry.get("em"), shadow=evaluator),
                      test, n_batches=4)
        assert evaluator.summary()["n_sampled"] == 4 * 16
        assert registry.latest("em") == "v0001"
        evaluator.promote()
        evaluator.close()
        assert registry.latest("em") == "v0002"

        # 7. A fresh matcher now serves the promoted challenger.
        served = registry.get("em")
        assert served.fingerprint == challenger_bundle.fingerprint
        result = StreamMatcher(served).submit(test[:8])
        assert len(result.probabilities) == 8

        records = read_monitor_log(tmp_path / "monitor.jsonl")
        assert {"shadow", "promotion"} <= {r["type"] for r in records}

    def test_match_service_check_trigger(self, trained_em):
        matcher, _, _, test = trained_em
        bundle = matcher.export_bundle()
        monitor = FeatureDriftMonitor.for_bundle(bundle, min_rows=50)
        stream = StreamMatcher(bundle, monitor=monitor)
        with MatchService(stream, workers=2) as service:
            futures = [service.submit(batch) for batch in request_batches(
                drifted_pairs(test, factor=1.0, seed=2), 16, n_batches=8)]
            for future in futures:
                future.result(timeout=30)
            plan = service.check_trigger([DriftTrigger()],
                                         resume_from="runs/em.jsonl")
        assert plan is not None
        assert plan.policy == "drift"
        assert plan.resume_from == "runs/em.jsonl"

    def test_match_service_quiet_without_monitoring(self, trained_em):
        matcher, _, _, test = trained_em
        with MatchService(StreamMatcher(matcher.export_bundle()),
                          workers=1) as service:
            service.submit(test[:4]).result(timeout=30)
            assert service.check_trigger([DriftTrigger()]) is None


class TestReplayDeterminism:
    def run_once(self, bundle, test, path):
        """One monitored serving run over fixed traffic, logged."""
        monitor = FeatureDriftMonitor.for_bundle(bundle, min_rows=50,
                                                 seed=0)
        stream = StreamMatcher(bundle, monitor=monitor)
        with MonitorLog(path) as log:
            for batch in request_batches(drifted_pairs(test, factor=1.0,
                                                       seed=1),
                                         16, n_batches=6, seed=0):
                stream.submit(batch)
                log.drift(monitor.report().as_dict())
            plan = evaluate_policies(default_policies(),
                                     MonitorStatus(drift=monitor.report()))
            if plan is not None:
                log.trigger(plan.as_dict())
        return read_monitor_log(path)

    def test_identical_traffic_replays_identically(self, trained_em,
                                                   tmp_path):
        matcher, _, _, test = trained_em
        bundle = matcher.export_bundle()
        first = self.run_once(bundle, test, tmp_path / "one.jsonl")
        second = self.run_once(bundle, test, tmp_path / "two.jsonl")
        assert first != [] and first[-1]["type"] == "trigger"
        assert deterministic_view(first) == deterministic_view(second)

    def test_view_strips_volatile_fields_recursively(self):
        records = [{"type": "shadow", "latency": 0.5,
                    "champion_latency": 1.0, "elapsed": 2.0,
                    "nested": {"wall_time": 3.0, "n_pairs": 7},
                    "n_sampled": 4}]
        view = deterministic_view(records)
        assert view == [{"type": "shadow",
                         "nested": {"n_pairs": 7}, "n_sampled": 4}]
