"""Tests for AdaBoost and gradient boosting."""

import numpy as np
import pytest

from repro.ml import AdaBoostClassifier, GradientBoostingClassifier, f1_score


class TestAdaBoost:
    def test_learns_blobs(self, blob_data):
        X_train, y_train, X_test, y_test = blob_data
        model = AdaBoostClassifier(n_estimators=20).fit(X_train, y_train)
        assert f1_score(y_test, model.predict(X_test)) > 0.9

    def test_stumps_beat_single_stump_on_xor(self, noisy_data):
        X_train, y_train, X_test, y_test = noisy_data
        single = AdaBoostClassifier(n_estimators=1, max_depth=2)
        many = AdaBoostClassifier(n_estimators=40, max_depth=2)
        f1_single = f1_score(y_test,
                             single.fit(X_train, y_train).predict(X_test))
        f1_many = f1_score(y_test,
                           many.fit(X_train, y_train).predict(X_test))
        assert f1_many >= f1_single

    def test_perfect_stump_shortcircuits(self, blob_data):
        X_train, y_train, _, _ = blob_data
        # Deep trees can fit blobs perfectly -> early stop with one member.
        model = AdaBoostClassifier(n_estimators=50, max_depth=None)
        model.fit(X_train, y_train)
        assert len(model.estimators_) < 50

    def test_proba_normalized(self, noisy_data):
        X_train, y_train, X_test, _ = noisy_data
        model = AdaBoostClassifier(n_estimators=10).fit(X_train, y_train)
        probs = model.predict_proba(X_test)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="n_estimators"):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ValueError, match="learning_rate"):
            AdaBoostClassifier(learning_rate=0)


class TestGradientBoosting:
    def test_learns_blobs(self, blob_data):
        X_train, y_train, X_test, y_test = blob_data
        model = GradientBoostingClassifier(n_estimators=30)
        model.fit(X_train, y_train)
        assert f1_score(y_test, model.predict(X_test)) > 0.9

    def test_learns_xor(self, noisy_data):
        X_train, y_train, X_test, y_test = noisy_data
        model = GradientBoostingClassifier(n_estimators=60, max_depth=3)
        model.fit(X_train, y_train)
        assert f1_score(y_test, model.predict(X_test)) > 0.65

    def test_decision_function_monotone_in_probability(self, noisy_data):
        X_train, y_train, X_test, _ = noisy_data
        model = GradientBoostingClassifier(n_estimators=20)
        model.fit(X_train, y_train)
        raw = model.decision_function(X_test)
        probs = model.predict_proba(X_test)[:, 1]
        order_raw = np.argsort(raw)
        order_prob = np.argsort(probs)
        np.testing.assert_array_equal(order_raw, order_prob)

    def test_subsample(self, blob_data):
        X_train, y_train, X_test, y_test = blob_data
        model = GradientBoostingClassifier(n_estimators=20, subsample=0.6,
                                           random_state=0)
        model.fit(X_train, y_train)
        assert f1_score(y_test, model.predict(X_test)) > 0.85

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.arange(30) % 3
        with pytest.raises(ValueError, match="binary-only"):
            GradientBoostingClassifier().fit(X, y)

    def test_invalid_subsample(self):
        with pytest.raises(ValueError, match="subsample"):
            GradientBoostingClassifier(subsample=0.0)

    def test_init_score_matches_prior(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.concatenate([np.ones(25, dtype=int),
                            np.zeros(75, dtype=int)])
        model = GradientBoostingClassifier(n_estimators=1).fit(X, y)
        assert model.init_score_ == pytest.approx(np.log(0.25 / 0.75))
