"""BlockIndex: persistence, invalidation, incremental growth, parallel."""

import pickle

import pytest

from repro.blocking import (
    BlockIndex,
    BlockIndexError,
    MinHashLSHBlocker,
    QGramBlocker,
    table_chain_fingerprint,
)
from repro.data import Table


@pytest.fixture()
def catalog():
    return Table("B", ["name", "city"], [
        ["arnie mortons of chicago", "los angeles"],
        ["arts delicatessen", "studio city"],
        ["cafe bizou", "sherman oaks"],
        ["spago la", "los angeles"],
        [None, "glendale"],
    ])


@pytest.fixture()
def probes():
    return Table("A", ["name", "city"], [
        ["arnie mortons", "los angeles"],
        ["arts deli", "studio city"],
        ["cafe bizou", "sherman oaks"],
        ["spago", "los angeles"],
    ])


def probe_keys(index, probes):
    return [p.key for p in index.probe(probes)]


class TestRoundTrip:
    @pytest.mark.parametrize("make_blocker", (
        lambda: QGramBlocker("name", q=3, min_overlap=2),
        lambda: MinHashLSHBlocker("name", num_perm=32, bands=8,
                                  random_state=4),
    ))
    def test_save_load_probe_parity(self, tmp_path, catalog, probes,
                                    make_blocker):
        blocker = make_blocker()
        index = blocker.index(catalog)
        path = tmp_path / "standing.idx"
        index.save(path)
        loaded = BlockIndex.load(path)
        assert probe_keys(loaded, probes) == probe_keys(index, probes)
        assert loaded.fingerprint == index.fingerprint
        assert loaded.num_records == index.num_records

    def test_loaded_index_is_self_contained(self, tmp_path, catalog,
                                            probes):
        """The blocker travels with the index: a loaded index keeps
        serving probes and growing without reconstructing config."""
        index = QGramBlocker("name", min_overlap=2).index(catalog)
        path = tmp_path / "standing.idx"
        index.save(path)
        loaded = BlockIndex.load(path)
        assert loaded.blocker.min_overlap == 2
        extra = Table("B", ["name", "city"],
                      [["spago beverly hills", "beverly hills"]], ids=[99])
        loaded.add_records(extra)
        assert any(right == 99 for _, right in probe_keys(loaded, probes))


class TestIncrementalParity:
    def test_add_records_in_batches_equals_one_pass(self, catalog, probes):
        blocker = QGramBlocker("name", min_overlap=2)
        one_pass = blocker.index(catalog)
        grown = BlockIndex(blocker, table_name=catalog.name,
                           columns=catalog.columns)
        records = list(catalog)
        grown.add_records(records[:2])
        grown.add_records(records[2:])
        assert grown.fingerprint == one_pass.fingerprint
        assert probe_keys(grown, probes) == probe_keys(one_pass, probes)

    def test_incremental_fingerprint_matches_table_chain(self, catalog):
        index = MinHashLSHBlocker("name", num_perm=16, bands=4,
                                  random_state=0).index(catalog)
        assert index.fingerprint == table_chain_fingerprint(catalog)

    def test_save_after_growth_still_validates(self, tmp_path, catalog,
                                               probes):
        """An index grown incrementally then saved must be reusable for
        the concatenated table (the from-scratch fingerprint)."""
        blocker = QGramBlocker("name", min_overlap=2)
        index = BlockIndex(blocker, table_name=catalog.name,
                           columns=catalog.columns)
        records = list(catalog)
        index.add_records(records[:3])
        index.add_records(records[3:])
        path = tmp_path / "grown.idx"
        index.save(path)
        reused = blocker.load_index_if_valid(path, catalog)
        assert reused is not None
        assert probe_keys(reused, probes) == probe_keys(index, probes)

    def test_as_table_snapshot_tracks_growth(self, catalog):
        index = QGramBlocker("name").index(catalog)
        before = index.as_table()
        assert before.fingerprint == catalog.fingerprint
        index.add_records(Table("B", ["name", "city"],
                                [["granita", "malibu"]], ids=[77]))
        after = index.as_table()
        assert after.num_rows == before.num_rows + 1
        assert after.fingerprint != before.fingerprint


class TestInvalidation:
    def test_param_change_invalidates(self, tmp_path, catalog):
        QGramBlocker("name", min_overlap=2).index(catalog).save(
            tmp_path / "i.idx")
        other = QGramBlocker("name", min_overlap=3)
        assert other.load_index_if_valid(tmp_path / "i.idx", catalog) is None

    def test_table_change_invalidates(self, tmp_path, catalog):
        blocker = QGramBlocker("name", min_overlap=2)
        blocker.index(catalog).save(tmp_path / "i.idx")
        changed = Table("B", catalog.columns,
                        [list(r.values) for r in list(catalog)[:-1]],
                        ids=[r.record_id for r in list(catalog)[:-1]])
        assert blocker.load_index_if_valid(tmp_path / "i.idx",
                                           changed) is None

    def test_build_or_load_reuses_then_rebuilds(self, tmp_path, catalog):
        path = tmp_path / "i.idx"
        blocker = QGramBlocker("name", min_overlap=2)
        first = blocker.build_or_load(catalog, path)
        reloaded = blocker.build_or_load(catalog, path)
        assert reloaded.fingerprint == first.fingerprint
        stricter = QGramBlocker("name", min_overlap=3)
        rebuilt = stricter.build_or_load(catalog, path)
        assert rebuilt.blocker.min_overlap == 3
        # The rebuild overwrote the file for the new configuration.
        assert stricter.load_index_if_valid(path, catalog) is not None

    def test_minhash_seed_is_part_of_the_fingerprint(self, tmp_path,
                                                     catalog):
        path = tmp_path / "m.idx"
        MinHashLSHBlocker("name", num_perm=16, bands=4,
                          random_state=0).index(catalog).save(path)
        reseeded = MinHashLSHBlocker("name", num_perm=16, bands=4,
                                     random_state=1)
        assert reseeded.load_index_if_valid(path, catalog) is None

    def test_missing_file_is_not_valid(self, tmp_path, catalog):
        blocker = QGramBlocker("name")
        assert blocker.load_index_if_valid(tmp_path / "nope.idx",
                                           catalog) is None


class TestCorruption:
    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"not a pickle")
        with pytest.raises(BlockIndexError):
            BlockIndex.load(path)

    def test_wrong_payload_type_raises(self, tmp_path):
        path = tmp_path / "list.idx"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(BlockIndexError, match="block index"):
            BlockIndex.load(path)

    def test_format_version_mismatch_raises(self, tmp_path, catalog):
        index = QGramBlocker("name").index(catalog)
        path = tmp_path / "v0.idx"
        index.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["format_version"] = 0
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(BlockIndexError, match="format"):
            BlockIndex.load(path)

    def test_tampered_fingerprint_raises(self, tmp_path, catalog):
        index = QGramBlocker("name").index(catalog)
        path = tmp_path / "tampered.idx"
        index.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["content_fingerprint"] = "0" * 40
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(BlockIndexError, match="fingerprint"):
            BlockIndex.load(path)


class TestRegistration:
    def test_duplicate_id_rejected(self, catalog):
        index = QGramBlocker("name").index(catalog)
        with pytest.raises(ValueError, match="already indexed"):
            index.add_records(Table("B", ["name", "city"],
                                    [["dup", "dup"]], ids=[0]))

    def test_schema_mismatch_rejected(self, catalog):
        index = QGramBlocker("name").index(catalog)
        with pytest.raises(ValueError, match="schema"):
            index.add_records(Table("B", ["name"], [["solo"]], ids=[50]))

    def test_block_sizes_nonempty(self, catalog):
        index = QGramBlocker("name").index(catalog)
        sizes = index.block_sizes()
        assert sizes and all(s >= 1 for s in sizes)


class TestParallelBuild:
    def test_parallel_build_equals_sequential(self, small_benchmark,
                                              monkeypatch):
        import repro.blocking.indexed as indexed

        monkeypatch.setattr(indexed, "PARALLEL_MIN_INDEX_RECORDS", 1)
        monkeypatch.setattr(indexed, "_MIN_INDEX_CHUNK", 8)
        a, b = small_benchmark.table_a, small_benchmark.table_b
        for make in (lambda n: QGramBlocker("name", min_overlap=2,
                                            n_jobs=n),
                     lambda n: MinHashLSHBlocker("name", num_perm=16,
                                                 bands=4, random_state=0,
                                                 n_jobs=n)):
            sequential = make(1).index(b)
            parallel = make(2).index(b)
            assert parallel.fingerprint == sequential.fingerprint
            assert probe_keys(parallel, a) == probe_keys(sequential, a)


class TestConcurrentSnapshot:
    def test_as_table_races_with_growth(self, catalog):
        """Regression: ``as_table`` used to cache ``_table`` while
        holding only the read side of the rw-lock, racing concurrent
        readers and growers.  The snapshot cache now has its own mutex;
        hammering snapshots against growth must stay consistent (and
        lock-order clean, which the witness checks)."""
        import threading

        from repro.concurrency import lock_witness_enabled

        with lock_witness_enabled():
            blocker = QGramBlocker("name", min_overlap=2)
            index = BlockIndex(blocker, table_name=catalog.name,
                               columns=catalog.columns)
            index.add_records(list(catalog)[:2])
            errors = []
            barrier = threading.Barrier(6)
            stop = threading.Event()

            def snapshotter():
                barrier.wait()
                try:
                    while not stop.is_set():
                        table = index.as_table()
                        # A snapshot is internally consistent: row count
                        # and id count always agree.
                        assert table.num_rows == len(list(table))
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            def grower():
                barrier.wait()
                try:
                    base = 100
                    for i in range(20):
                        index.add_records(Table(
                            catalog.name, catalog.columns,
                            [[f"new place {i}", "city"]], ids=[base + i]))
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                finally:
                    stop.set()

            threads = [threading.Thread(target=snapshotter)
                       for _ in range(5)]
            threads.append(threading.Thread(target=grower))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert not any(thread.is_alive() for thread in threads)
            assert errors == []
            assert index.as_table().num_rows == 2 + 20

    def test_snapshot_cache_survives_pickle(self, catalog):
        index = QGramBlocker("name", min_overlap=2).index(catalog)
        index.as_table()  # populate the cache and its lock
        clone = pickle.loads(pickle.dumps(index))
        assert clone.as_table().fingerprint == catalog.fingerprint
        clone.add_records(Table("B", ["name", "city"],
                                [["granita", "malibu"]], ids=[77]))
        assert clone.as_table().num_rows == catalog.num_rows + 1
