"""Unit tests for AutoML-EM-Active's internal helpers."""

import numpy as np
import pytest

from repro.core.active import _stratified_holdout


class TestStratifiedHoldout:
    def test_partition(self, rng):
        y = rng.integers(0, 2, 50)
        keep, hold = _stratified_holdout(y, 0.2, rng)
        combined = sorted(np.concatenate([keep, hold]).tolist())
        assert combined == list(range(50))

    def test_each_class_on_both_sides(self, rng):
        y = np.asarray([0] * 45 + [1] * 5)
        keep, hold = _stratified_holdout(y, 0.2, rng)
        assert set(y[keep]) == {0, 1}
        assert set(y[hold]) == {0, 1}

    def test_single_member_class_goes_to_holdout(self, rng):
        # A class with exactly one member cannot be on both sides; the
        # helper puts it in the holdout so validation sees it.
        y = np.asarray([0] * 10 + [1])
        keep, hold = _stratified_holdout(y, 0.2, rng)
        assert 10 in hold.tolist()

    def test_fraction_respected_approximately(self, rng):
        y = rng.integers(0, 2, 200)
        _, hold = _stratified_holdout(y, 0.25, rng)
        assert len(hold) == pytest.approx(50, abs=3)

    def test_deterministic_given_rng_state(self):
        y = np.arange(30) % 2
        k1, h1 = _stratified_holdout(y, 0.2, np.random.default_rng(4))
        k2, h2 = _stratified_holdout(y, 0.2, np.random.default_rng(4))
        np.testing.assert_array_equal(k1, k2)
        np.testing.assert_array_equal(h1, h2)
