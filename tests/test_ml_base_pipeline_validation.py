"""Tests for estimator plumbing, Pipeline and validation utilities."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    NotFittedError,
    Pipeline,
    RandomForestClassifier,
    SelectPercentile,
    SimpleImputer,
    StandardScaler,
    StratifiedKFold,
    clone,
    cross_val_score,
    f1_score,
    train_test_split,
)
from repro.ml.base import check_X_y, encode_labels


class TestBaseEstimator:
    def test_get_params_round_trip(self):
        tree = DecisionTreeClassifier(max_depth=7, criterion="entropy")
        params = tree.get_params()
        assert params["max_depth"] == 7
        assert params["criterion"] == "entropy"

    def test_set_params(self):
        tree = DecisionTreeClassifier()
        tree.set_params(max_depth=3)
        assert tree.max_depth == 3

    def test_set_unknown_param_raises(self):
        with pytest.raises(ValueError, match="no parameter"):
            DecisionTreeClassifier().set_params(depth=3)

    def test_clone_is_unfitted_copy(self, blob_data):
        X_train, y_train, _, _ = blob_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X_train, y_train)
        copy = clone(tree)
        assert copy.max_depth == 4
        with pytest.raises(NotFittedError):
            copy.predict(X_train)

    def test_repr_contains_params(self):
        assert "max_depth=5" in repr(DecisionTreeClassifier(max_depth=5))


class TestValidationHelpers:
    def test_check_X_y_shapes(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_X_y(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="rows but"):
            check_X_y(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError, match="empty"):
            check_X_y(np.zeros((0, 2)), np.zeros(0))

    def test_encode_labels(self):
        classes, encoded = encode_labels(["b", "a", "b"])
        assert classes.tolist() == ["a", "b"]
        assert encoded.tolist() == [1, 0, 1]


class TestTrainTestSplit:
    def test_sizes(self, blob_data):
        X_train, y_train, _, _ = blob_data
        X_tr, X_te, y_tr, y_te = train_test_split(X_train, y_train,
                                                  test_size=0.25, seed=0)
        assert len(X_te) == pytest.approx(0.25 * len(X_train), abs=2)
        assert len(X_tr) + len(X_te) == len(X_train)

    def test_stratification(self):
        y = np.asarray([0] * 80 + [1] * 20)
        X = np.arange(100, dtype=float).reshape(-1, 1)
        _, _, _, y_te = train_test_split(X, y, test_size=0.2, seed=0)
        assert y_te.sum() == 4

    def test_invalid_test_size(self, blob_data):
        X_train, y_train, _, _ = blob_data
        with pytest.raises(ValueError, match="test_size"):
            train_test_split(X_train, y_train, test_size=1.5)


class TestStratifiedKFold:
    def test_folds_partition(self):
        y = np.asarray([0] * 30 + [1] * 10)
        seen = []
        for train_idx, test_idx in StratifiedKFold(4, seed=0).split(y):
            assert set(train_idx) & set(test_idx) == set()
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(40))

    def test_each_fold_has_minority(self):
        y = np.asarray([0] * 36 + [1] * 4)
        for _, test_idx in StratifiedKFold(4, seed=0).split(y):
            assert y[test_idx].sum() == 1

    def test_invalid_splits(self):
        with pytest.raises(ValueError, match="n_splits"):
            StratifiedKFold(1)

    def test_cross_val_score(self, blob_data):
        X_train, y_train, _, _ = blob_data
        scores = cross_val_score(DecisionTreeClassifier(max_depth=4),
                                 X_train, y_train, n_splits=3)
        assert scores.shape == (3,)
        assert scores.min() > 0.8


class TestPipeline:
    def test_full_chain(self, rng):
        X = rng.normal(size=(120, 10))
        X[rng.random(X.shape) < 0.1] = np.nan
        y = (np.nan_to_num(X[:, 0]) > 0).astype(int)
        pipe = Pipeline([
            ("impute", SimpleImputer()),
            ("scale", StandardScaler()),
            ("select", SelectPercentile(50)),
            ("clf", RandomForestClassifier(n_estimators=10,
                                           random_state=0)),
        ])
        pipe.fit(X[:100], y[:100])
        assert f1_score(y[100:], pipe.predict(X[100:])) > 0.5

    def test_predict_proba_passthrough(self, blob_data):
        X_train, y_train, X_test, _ = blob_data
        pipe = Pipeline([("scale", StandardScaler()),
                         ("clf", DecisionTreeClassifier())])
        pipe.fit(X_train, y_train)
        assert pipe.predict_proba(X_test).shape == (len(X_test), 2)

    def test_unfitted_raises(self, blob_data):
        _, _, X_test, _ = blob_data
        pipe = Pipeline([("clf", DecisionTreeClassifier())])
        with pytest.raises(NotFittedError):
            pipe.predict(X_test)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one step"):
            Pipeline([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate step names"):
            Pipeline([("a", SimpleImputer()), ("a", StandardScaler())])
