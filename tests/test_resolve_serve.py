"""Serving-path integration of the resolve layer.

Covers the resolver tap on BatchMatcher/StreamMatcher, the typed
NoStandingIndexError, the MatchService monitoring surface, and the
acceptance end-to-end: train → export → stream with resolution →
stable entity ids whose cluster pairwise F1 is no worse than the
matcher's own pairwise F1, with incremental clustering bit-identical
to a one-shot batch re-cluster.
"""

import numpy as np
import pytest

from repro.automl.runner import read_run_log
from repro.blocking import gold_pair_keys
from repro.ml.metrics import precision_recall_f1
from repro.resolve import (
    CorrelationClustering,
    EntityStore,
    decisions_from_result,
    evaluate_clustering,
)
from repro.serve import BatchMatcher, NoStandingIndexError, StreamMatcher


@pytest.fixture()
def bundle(trained_em):
    return trained_em[0].export_bundle()


class TestNoStandingIndexError:
    def test_typed_and_backward_compatible(self, bundle):
        stream = StreamMatcher(bundle)
        with pytest.raises(NoStandingIndexError,
                           match="standing block index"):
            stream.submit_records([])
        # RuntimeError-flavored, but still a ValueError for old callers
        assert issubclass(NoStandingIndexError, RuntimeError)
        assert issubclass(NoStandingIndexError, ValueError)
        with pytest.raises(ValueError, match="standing block"):
            stream.extend_index([])

    def test_message_names_both_remedies(self, bundle):
        stream = StreamMatcher(bundle)
        with pytest.raises(NoStandingIndexError) as excinfo:
            stream.extend_index([])
        assert "blocker.index(catalog)" in str(excinfo.value)
        assert "BlockIndex.load(path)" in str(excinfo.value)


class TestResolverTap:
    def test_entities_attached_to_results(self, trained_em, bundle):
        _, _, _, test = trained_em
        store = EntityStore()
        with BatchMatcher(bundle, batch_size=64,
                          resolver=store) as served:
            result = served.match_pairs(test[:20])
        assert result.entities is not None
        assert len(result.entities) == len(
            {p.left.record_id for p in result.pairs}) + len(
            {p.right.record_id for p in result.pairs})
        assert all(":" in key and ":" in value
                   for key, value in result.entities.items())
        assert store.version == 1
        assert store.n_decisions == 20

    def test_no_resolver_means_no_entities(self, trained_em, bundle):
        _, _, _, test = trained_em
        result = BatchMatcher(bundle).match_pairs(test[:5])
        assert result.entities is None

    def test_request_log_counts_entities(self, trained_em, bundle,
                                         tmp_path):
        _, _, _, test = trained_em
        log_path = tmp_path / "requests.jsonl"
        with BatchMatcher(bundle, batch_size=64, resolver=EntityStore(),
                          request_log=log_path) as served:
            served.match_pairs(test[:10])
        record = read_run_log(log_path)[0]
        assert record["type"] == "request"
        assert record["n_entities"] >= 1

    def test_assignments_stable_across_repeat_requests(self, trained_em,
                                                       bundle):
        _, _, _, test = trained_em
        store = EntityStore()
        stream = StreamMatcher(bundle, resolver=store)
        first = stream.submit(test[:15]).entities
        again = stream.submit(test[:15]).entities
        assert first == again

    def test_service_status_carries_resolve_stats(self, trained_em,
                                                  bundle):
        from repro.monitor import ClusterChurnTrigger
        from repro.resolve import MatchDecision, node_key
        from repro.serve.service import MatchService

        store = EntityStore()
        # two attachments, then a merge of two real entities: 1/3 rate
        store.apply([
            MatchDecision(node_key("a", 1), node_key("b", 1), 0.9, True),
            MatchDecision(node_key("a", 2), node_key("b", 2), 0.9, True),
            MatchDecision(node_key("a", 1), node_key("a", 2), 0.9, True),
        ])
        churn = ClusterChurnTrigger(threshold=0.3, min_unions=1)
        with MatchService(StreamMatcher(bundle, resolver=store),
                          workers=1) as service:
            plan = service.check_trigger(policies=[churn])
        assert plan is not None
        assert plan.policy == "cluster_churn"
        assert plan.details["n_unions"] == 3
        assert plan.details["entity_merge_rate"] == pytest.approx(1 / 3)


class TestResolutionEndToEnd:
    def test_stream_resolution_acceptance(self, trained_em, bundle):
        """The ISSUE acceptance gate, on the real trained matcher."""
        _, _, _, test = trained_em
        store = EntityStore(refiner=CorrelationClustering(seed=0))
        results = []
        chunk = max(1, len(test) // 4)
        with StreamMatcher(bundle, resolver=store) as stream:
            for start in range(0, len(test), chunk):
                results.append(stream.submit(test[start:start + chunk]))

        predictions = np.concatenate([r.predictions for r in results])
        _, _, decision_f1 = precision_recall_f1(test.labels, predictions)

        entities = store.entities()
        components = {members[0]: members
                      for members in entities.values()}
        report = evaluate_clustering(components, gold_pair_keys(test))
        # transitive closure + refinement must not lose quality
        assert report.pairwise_f1 >= decision_f1 - 1e-9
        assert report.n_entities == len(entities)

        # incremental apply() is bit-identical to batch re-clustering
        decisions = [d for r in results
                     for d in decisions_from_result(r)]
        batch_store = EntityStore(
            refiner=CorrelationClustering(seed=0))
        batch_store.apply(decisions)
        assert batch_store.entities() == entities
        assert batch_store.fingerprint == store.fingerprint

        # entity ids are stable: a different chunking yields them too
        other = EntityStore(refiner=CorrelationClustering(seed=0))
        for start in range(0, len(decisions), 7):
            other.apply(decisions[start:start + 7])
        assert other.entities() == entities
