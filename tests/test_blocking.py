"""Tests for the blocking substrate."""

import pytest

from repro.blocking import (
    AttributeEquivalenceBlocker,
    OverlapBlocker,
    blocking_recall,
)
from repro.data import MATCH, Table


@pytest.fixture()
def tables():
    a = Table("A", ["name", "city"], [
        ["arnie mortons", "los angeles"],
        ["arts deli", "studio city"],
        ["fenix", "hollywood"],
    ])
    b = Table("B", ["name", "city"], [
        ["arnie mortons of chicago", "los angeles"],
        ["arts delicatessen", "studio city"],
        ["katsu", "los angeles"],
        [None, "hollywood"],
    ])
    return a, b


class TestAttributeEquivalence:
    def test_same_city_pairs(self, tables):
        a, b = tables
        pairs = AttributeEquivalenceBlocker("city").block(a, b)
        keys = {p.key for p in pairs}
        assert (0, 0) in keys  # both los angeles
        assert (0, 2) in keys
        assert (1, 1) in keys
        assert (1, 0) not in keys  # studio city vs los angeles

    def test_missing_values_skipped(self, tables):
        # b[3] has a missing name; the name blocker must never pair it.
        a, b = tables
        pairs = OverlapBlocker("name").block(a, b)
        assert all(p.right.record_id != 3 for p in pairs)

    def test_candidate_count_below_cross_product(self, tables):
        a, b = tables
        pairs = AttributeEquivalenceBlocker("city").block(a, b)
        assert len(pairs) < len(a) * len(b)


class TestOverlapBlocker:
    def test_shared_token_pairs(self, tables):
        a, b = tables
        pairs = OverlapBlocker("name", min_overlap=1).block(a, b)
        keys = {p.key for p in pairs}
        assert (0, 0) in keys  # share "arnie" and "mortons"
        assert (1, 1) in keys  # share "arts"
        assert (2, 2) not in keys  # fenix vs katsu share nothing

    def test_min_overlap_two_is_stricter(self, tables):
        a, b = tables
        loose = OverlapBlocker("name", min_overlap=1).block(a, b)
        strict = OverlapBlocker("name", min_overlap=2).block(a, b)
        assert len(strict) <= len(loose)
        assert {p.key for p in strict} <= {p.key for p in loose}

    def test_invalid_overlap(self):
        with pytest.raises(ValueError, match="min_overlap"):
            OverlapBlocker("name", min_overlap=0)


class TestOverlapBlockerDedup:
    """Regression: duplicate candidates and re-tokenization (PR 3)."""

    @pytest.fixture()
    def repeated_tables(self):
        # Table A repeats the same name across records; B's blocks for
        # "arnie" and "mortons" overlap on the same right records.
        a = Table("A", ["name"], [
            ["arnie mortons"],
            ["arnie mortons"],
            ["arnie mortons"],
            ["arts deli"],
        ])
        b = Table("B", ["name"], [
            ["arnie mortons of chicago"],
            ["mortons arnie"],
            ["arts delicatessen"],
        ])
        return a, b

    def test_no_duplicate_candidate_pairs(self, repeated_tables):
        a, b = repeated_tables
        pairs = OverlapBlocker("name").block(a, b)
        keys = [p.key for p in pairs]
        assert len(keys) == len(set(keys))

    def test_matches_naive_reference(self, repeated_tables):
        """Blocking output equals the brute-force overlap definition."""
        from repro.similarity.tokenizers import ALNUM

        a, b = repeated_tables
        for min_overlap in (1, 2):
            expected = set()
            for left in a:
                for right in b:
                    if left["name"] is None or right["name"] is None:
                        continue
                    shared = (set(ALNUM(str(left["name"])))
                              & set(ALNUM(str(right["name"]))))
                    if len(shared) >= min_overlap:
                        expected.add((left.record_id, right.record_id))
            got = OverlapBlocker("name", min_overlap=min_overlap).block(a, b)
            assert {p.key for p in got} == expected

    def test_token_cache_reused_across_records(self, repeated_tables):
        a, b = repeated_tables
        blocker = OverlapBlocker("name")
        blocker.block(a, b)
        # One cache entry per *distinct* value string, not per record.
        distinct = {str(r["name"]) for r in a if r["name"] is not None} \
            | {str(r["name"]) for r in b if r["name"] is not None}
        assert len(blocker.token_cache) == len(distinct)

    def test_shared_token_cache_instance(self, repeated_tables):
        from repro.features.columnar import TokenCache

        a, b = repeated_tables
        shared = TokenCache()
        first = OverlapBlocker("name", token_cache=shared).block(a, b)
        warm = OverlapBlocker("name", token_cache=shared).block(a, b)
        assert {p.key for p in first} == {p.key for p in warm}
        assert len(shared) > 0

    def test_benchmark_output_unchanged(self, small_benchmark):
        """Dedup + caching must not change real blocking output."""
        pairs = OverlapBlocker("name").block(small_benchmark.table_a,
                                             small_benchmark.table_b)
        keys = [p.key for p in pairs]
        assert len(keys) == len(set(keys))
        assert len(pairs) > 0


class TestBlockingRecall:
    def test_full_recall(self, tables):
        a, b = tables
        pairs = OverlapBlocker("name", min_overlap=1).block(a, b)
        gold = {(0, 0), (1, 1)}
        assert blocking_recall(pairs, gold) == 1.0

    def test_partial_recall(self, tables):
        a, b = tables
        pairs = AttributeEquivalenceBlocker("city").block(a, b)
        gold = {(0, 0), (2, 3)}  # second pair's right has city but no block hit
        recall = blocking_recall(pairs, gold)
        assert recall == 1.0 or recall == 0.5  # depends on missing handling
        assert blocking_recall(pairs, {(0, 1)}) == 0.0

    def test_empty_gold(self, tables):
        a, b = tables
        pairs = AttributeEquivalenceBlocker("city").block(a, b)
        assert blocking_recall(pairs, set()) == 1.0

    def test_on_generated_benchmark(self, small_benchmark):
        gold = {p.key for p in small_benchmark.pairs if p.label == MATCH}
        pairs = OverlapBlocker("name").block(small_benchmark.table_a,
                                             small_benchmark.table_b)
        # most true matches share at least one name token
        assert blocking_recall(pairs, gold) > 0.8


class TestNormalizedEquivalence:
    """Satellite: optional case/whitespace normalization (PR 5)."""

    @pytest.fixture()
    def messy_tables(self):
        a = Table("A", ["name", "city"], [
            ["x", "New  York"],
            ["y", "Los Angeles"],
            ["z", None],
        ])
        b = Table("B", ["name", "city"], [
            ["p", "new york"],
            ["q", "los  angeles "],
            ["r", "New  York"],
        ])
        return a, b

    def test_default_is_bit_exact(self, messy_tables):
        a, b = messy_tables
        pairs = AttributeEquivalenceBlocker("city").block(a, b)
        assert {p.key for p in pairs} == {(0, 2)}

    def test_normalize_folds_case_and_whitespace(self, messy_tables):
        a, b = messy_tables
        blocker = AttributeEquivalenceBlocker("city", normalize=True)
        pairs = blocker.block(a, b)
        assert {p.key for p in pairs} == {(0, 0), (0, 2), (1, 1)}

    def test_missing_values_never_pair(self, messy_tables):
        a, b = messy_tables
        blocker = AttributeEquivalenceBlocker("city", normalize=True)
        assert all(p.left.record_id != 2 for p in blocker.block(a, b))

    def test_admits_matches_block(self, messy_tables):
        a, b = messy_tables
        for normalize in (False, True):
            blocker = AttributeEquivalenceBlocker("city",
                                                  normalize=normalize)
            blocked = {p.key for p in blocker.block(a, b)}
            admitted = {(left.record_id, right.record_id)
                        for left in a for right in b
                        if blocker.admits(left, right)}
            assert blocked == admitted


class TestConstructorValidation:
    """Satellite: clear ValueErrors for bad blocker arguments (PR 5)."""

    def test_empty_attribute_rejected(self):
        from repro.blocking import MinHashLSHBlocker, QGramBlocker

        for factory in (AttributeEquivalenceBlocker, OverlapBlocker,
                        QGramBlocker, MinHashLSHBlocker):
            with pytest.raises(ValueError, match="attribute"):
                factory("")

    def test_qgram_validation(self):
        from repro.blocking import QGramBlocker

        with pytest.raises(ValueError, match="q must be >= 2"):
            QGramBlocker("name", q=1)
        with pytest.raises(ValueError, match="min_overlap"):
            QGramBlocker("name", min_overlap=0)

    def test_minhash_band_validation(self):
        from repro.blocking import MinHashLSHBlocker

        with pytest.raises(ValueError, match="bands must divide"):
            MinHashLSHBlocker("name", num_perm=100, bands=32)
        with pytest.raises(ValueError, match="bands x rows"):
            MinHashLSHBlocker("name", num_perm=128, bands=32, rows=5)
        with pytest.raises(ValueError, match="num_perm"):
            MinHashLSHBlocker("name", num_perm=0)
        with pytest.raises(ValueError, match="bands"):
            MinHashLSHBlocker("name", bands=0)

    def test_minhash_explicit_rows_accepted(self):
        from repro.blocking import MinHashLSHBlocker

        blocker = MinHashLSHBlocker("name", num_perm=128, bands=32, rows=4)
        assert blocker.rows == 4


class TestFilterPairs:
    def test_filter_keeps_labels(self, tables):
        a, b = tables
        loose = OverlapBlocker("name", min_overlap=1).block(a, b)
        labeled = type(loose)(loose.table_a, loose.table_b,
                              [p.with_label(1) for p in loose])
        strict = OverlapBlocker("name", min_overlap=2)
        kept = strict.filter_pairs(labeled)
        assert {p.key for p in kept} <= {p.key for p in labeled}
        assert all(p.label == 1 for p in kept)
        assert all(strict.admits(p.left, p.right) for p in kept)
