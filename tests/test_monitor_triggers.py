"""Tests for trigger policies, RetrainPlan round trips, and the REP007
conformance of the policy registry."""

import json
from pathlib import Path

import pytest

from repro.monitor import (
    ALL_POLICIES,
    ClusterChurnTrigger,
    DisagreementTrigger,
    DriftTrigger,
    MonitorStatus,
    RetrainPlan,
    StalenessTrigger,
    TriggerPolicy,
    bundle_age_seconds,
    default_policies,
    evaluate_policies,
)
from repro.monitor.drift import DriftReport

SRC = Path(__file__).resolve().parent.parent / "src"


def drift_report(drifted, sufficient=True, features=("a",)):
    return DriftReport(
        n_rows=500, sufficient=sufficient, features=[],
        score_psi=0.0, match_rate=0.3, reference_match_rate=0.3,
        drifted_features=list(features) if drifted else [],
        drifted=drifted)


class TestDriftTrigger:
    def test_fires_on_drifted_report(self):
        plan = DriftTrigger().evaluate(
            MonitorStatus(drift=drift_report(True)))
        assert plan is not None
        assert plan.policy == "drift"
        assert "a" in plan.reason
        assert plan.details["drifted_features"] == ["a"]

    def test_holds_on_quiet_or_missing_report(self):
        trigger = DriftTrigger()
        assert trigger.evaluate(MonitorStatus()) is None
        assert trigger.evaluate(
            MonitorStatus(drift=drift_report(False))) is None

    def test_insufficient_data_never_fires(self):
        report = drift_report(True, sufficient=False)
        assert DriftTrigger().evaluate(MonitorStatus(drift=report)) is None

    def test_long_culprit_list_is_truncated_in_reason(self):
        names = [f"f{i}" for i in range(40)]
        plan = DriftTrigger().evaluate(
            MonitorStatus(drift=drift_report(True, features=names)))
        assert "and 35 more" in plan.reason
        assert plan.details["drifted_features"] == names


class TestDisagreementTrigger:
    def test_fires_over_threshold_with_enough_pairs(self):
        trigger = DisagreementTrigger(threshold=0.1, min_pairs=50)
        plan = trigger.evaluate(MonitorStatus(
            shadow={"n_sampled": 100, "disagreement_rate": 0.2}))
        assert plan is not None
        assert plan.policy == "disagreement"
        assert plan.details["disagreement_rate"] == 0.2

    def test_holds_below_threshold_or_sample_floor(self):
        trigger = DisagreementTrigger(threshold=0.1, min_pairs=50)
        assert trigger.evaluate(MonitorStatus(
            shadow={"n_sampled": 100, "disagreement_rate": 0.05})) is None
        assert trigger.evaluate(MonitorStatus(
            shadow={"n_sampled": 10, "disagreement_rate": 0.9})) is None
        assert trigger.evaluate(MonitorStatus()) is None

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            DisagreementTrigger(threshold=0.0)


class TestStalenessTrigger:
    def test_request_volume_fires(self):
        trigger = StalenessTrigger(max_requests=100)
        plan = trigger.evaluate(MonitorStatus(requests_since_export=150))
        assert plan is not None
        assert plan.policy == "staleness"
        assert trigger.evaluate(
            MonitorStatus(requests_since_export=50)) is None

    def test_bundle_age_fires(self):
        trigger = StalenessTrigger(max_age=3600)
        assert trigger.evaluate(MonitorStatus(bundle_age=7200)) is not None
        assert trigger.evaluate(MonitorStatus(bundle_age=60)) is None

    def test_disabled_limits_never_fire(self):
        trigger = StalenessTrigger()
        assert trigger.evaluate(MonitorStatus(
            requests_since_export=10**9, bundle_age=10**9)) is None

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError, match="max_requests"):
            StalenessTrigger(max_requests=0)
        with pytest.raises(ValueError, match="max_age"):
            StalenessTrigger(max_age=-1)


class TestClusterChurnTrigger:
    def churn(self, rate, n_unions=100):
        return {"n_unions": n_unions, "entity_merge_rate": rate,
                "n_entity_merges": int(rate * n_unions),
                "n_components": 42}

    def test_fires_on_sustained_merge_rate(self):
        plan = ClusterChurnTrigger(threshold=0.2).evaluate(
            MonitorStatus(resolve=self.churn(0.35)))
        assert plan is not None
        assert plan.policy == "cluster_churn"
        assert "0.350" in plan.reason
        assert plan.details["n_components"] == 42
        assert plan.details["threshold"] == pytest.approx(0.2)

    def test_holds_below_threshold_or_volume_floor(self):
        trigger = ClusterChurnTrigger(threshold=0.2, min_unions=50)
        assert trigger.evaluate(
            MonitorStatus(resolve=self.churn(0.1))) is None
        assert trigger.evaluate(
            MonitorStatus(resolve=self.churn(0.9, n_unions=10))) is None

    def test_no_resolver_attached_never_fires(self):
        assert ClusterChurnTrigger().evaluate(MonitorStatus()) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            ClusterChurnTrigger(threshold=0.0)
        with pytest.raises(ValueError, match="min_unions"):
            ClusterChurnTrigger(min_unions=0)


class TestBundleAge:
    def test_age_from_exported_at(self):
        age = bundle_age_seconds({"exported_at": 1000.0}, now=1600.0)
        assert age == 600.0

    def test_clock_skew_clamps_to_zero(self):
        assert bundle_age_seconds({"exported_at": 2000.0}, now=1000.0) == 0.0

    def test_missing_timestamp_is_none(self):
        assert bundle_age_seconds({}) is None


class TestEvaluatePolicies:
    def test_first_firing_policy_wins(self):
        status = MonitorStatus(drift=drift_report(True),
                               requests_since_export=10**6)
        plan = evaluate_policies(
            [StalenessTrigger(max_requests=10), DriftTrigger()], status)
        assert plan.policy == "staleness"

    def test_resume_from_is_stamped(self):
        plan = evaluate_policies(default_policies(),
                                 MonitorStatus(drift=drift_report(True)),
                                 resume_from="runs/champion.jsonl")
        assert plan.policy == "drift"
        assert plan.resume_from == "runs/champion.jsonl"
        assert plan.automl_kwargs()["resume_from"] == "runs/champion.jsonl"

    def test_quiet_status_yields_none(self):
        assert evaluate_policies(default_policies(), MonitorStatus()) is None

    def test_default_policies_cover_the_registry(self):
        names = {type(policy).name for policy in default_policies()}
        assert names == {cls.name for cls in ALL_POLICIES}


class TestRetrainPlan:
    def test_json_round_trip(self, tmp_path):
        plan = RetrainPlan(policy="drift", reason="because",
                           resume_from="runs/x.jsonl",
                           details={"n_rows": 10})
        path = plan.save(tmp_path / "plans" / "plan.json")
        restored = RetrainPlan.load(path)
        assert restored == plan
        assert json.loads(path.read_text())["policy"] == "drift"

    def test_automl_kwargs_overrides(self):
        plan = RetrainPlan(policy="drift", reason="r", resume_from="log")
        kwargs = plan.automl_kwargs(n_iterations=5)
        assert kwargs == {"resume_from": "log", "n_iterations": 5}

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TriggerPolicy().evaluate(MonitorStatus())


class TestRegistryConformance:
    """The policy registry must satisfy its own REP007 conventions."""

    def test_real_triggers_module_is_conformant(self):
        from repro.devtools.conformance import check_trigger_registry

        path = SRC / "repro" / "monitor" / "triggers.py"
        assert check_trigger_registry(path) == []

    def test_registry_entries_follow_conventions_at_runtime(self):
        names = [cls.name for cls in ALL_POLICIES]
        assert len(names) == len(set(names)), "policy names must be unique"
        for cls in ALL_POLICIES:
            assert issubclass(cls, TriggerPolicy)
            assert cls.name != TriggerPolicy.name
            assert cls.evaluate is not TriggerPolicy.evaluate

    def test_checker_catches_broken_registries(self, tmp_path):
        from repro.devtools.conformance import check_trigger_registry

        bad = tmp_path / "triggers.py"
        bad.write_text(
            "class TriggerPolicy:\n"
            "    name = 'base'\n"
            "    def evaluate(self, status):\n"
            "        raise NotImplementedError\n"
            "class NoName(TriggerPolicy):\n"
            "    def evaluate(self, status):\n"
            "        return None\n"
            "class Dupe1(TriggerPolicy):\n"
            "    name = 'dupe'\n"
            "    def evaluate(self, status):\n"
            "        return None\n"
            "class Dupe2(TriggerPolicy):\n"
            "    name = 'dupe'\n"
            "    def evaluate(self, status):\n"
            "        return None\n"
            "class Abstract(TriggerPolicy):\n"
            "    name = 'abstract'\n"
            "class Loner:\n"
            "    name = 'loner'\n"
            "    def evaluate(self, status):\n"
            "        return None\n"
            "ALL_POLICIES = (NoName, Dupe1, Dupe2, Abstract, Loner,\n"
            "                Ghost)\n",
            encoding="utf-8")
        violations = check_trigger_registry(bad)
        messages = "\n".join(v.message for v in violations)
        assert "NoName lacks its own class-level string `name`" in messages
        assert "duplicate policy name 'dupe'" in messages
        assert "Abstract neither defines nor inherits" in messages
        assert "Loner does not subclass TriggerPolicy" in messages
        assert "Ghost is not a class defined" in messages
        assert all(v.code == "REP007" for v in violations)

    def test_checker_flags_missing_registry(self, tmp_path):
        from repro.devtools.conformance import check_trigger_registry

        empty = tmp_path / "triggers.py"
        empty.write_text("x = 1\n", encoding="utf-8")
        violations = check_trigger_registry(empty)
        assert any("no ALL_POLICIES registry" in v.message
                   for v in violations)

    def test_lint_paths_dispatches_on_the_anchor(self, tmp_path):
        from repro.devtools.lint import lint_paths

        bad = tmp_path / "repro" / "monitor"
        bad.mkdir(parents=True)
        target = bad / "triggers.py"
        target.write_text("ALL_POLICIES = (Ghost,)\n", encoding="utf-8")
        violations = lint_paths([target], root=tmp_path)
        assert any(v.code == "REP007" and "Ghost" in v.message
                   for v in violations)
