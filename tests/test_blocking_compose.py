"""Composition algebra: union, intersection, cascade and the operators."""

import pytest

from repro.blocking import (
    AttributeEquivalenceBlocker,
    CascadeBlocker,
    IntersectionBlocker,
    MinHashLSHBlocker,
    OverlapBlocker,
    QGramBlocker,
    UnionBlocker,
)
from repro.data import Table


@pytest.fixture()
def tables():
    a = Table("A", ["name", "city"], [
        ["arnie mortons", "los angeles"],
        ["arts deli", "studio city"],
        ["cafe bizou", "sherman oaks"],
        ["spago", "los angeles"],
        [None, "pasadena"],
    ])
    b = Table("B", ["name", "city"], [
        ["arnie mortons of chicago", "los angeles"],
        ["arts delicatessen", "studio city"],
        ["cafe bizou", "sherman oaks"],
        ["spago la", "los angeles"],
        ["granita", "malibu"],
    ])
    return a, b


def keys(pairs):
    return [p.key for p in pairs]


class TestSetAlgebra:
    def test_union_is_set_union(self, tables):
        a, b = tables
        name = QGramBlocker("name", min_overlap=2)
        city = AttributeEquivalenceBlocker("city")
        union = UnionBlocker(name, city)
        assert set(keys(union.block(a, b))) == (
            set(keys(name.block(a, b))) | set(keys(city.block(a, b))))

    def test_intersection_is_set_intersection(self, tables):
        a, b = tables
        name = QGramBlocker("name", min_overlap=2)
        city = AttributeEquivalenceBlocker("city")
        inter = IntersectionBlocker(name, city)
        assert set(keys(inter.block(a, b))) == (
            set(keys(name.block(a, b))) & set(keys(city.block(a, b))))

    def test_cascade_equals_intersection_pairs(self, tables):
        """A cascade admits exactly what the intersection admits — the
        difference is cost, not result."""
        a, b = tables
        cheap = OverlapBlocker("name", min_overlap=1)
        strict = QGramBlocker("name", min_overlap=4)
        cascade = CascadeBlocker(cheap, strict)
        inter = IntersectionBlocker(cheap, strict)
        assert set(keys(cascade.block(a, b))) == set(keys(inter.block(a, b)))

    def test_union_no_duplicates_first_occurrence_order(self, tables):
        a, b = tables
        name = QGramBlocker("name", min_overlap=1)
        union = UnionBlocker(name, AttributeEquivalenceBlocker("city"))
        got = keys(union.block(a, b))
        assert len(got) == len(set(got))
        # Keys from the first member come first, in its own order.
        first = keys(name.block(a, b))
        assert got[:len(first)] == first

    def test_composite_block_matches_admits(self, tables):
        a, b = tables
        composites = [
            UnionBlocker(QGramBlocker("name", min_overlap=2),
                         AttributeEquivalenceBlocker("city")),
            IntersectionBlocker(QGramBlocker("name", min_overlap=2),
                                AttributeEquivalenceBlocker("city")),
            CascadeBlocker(OverlapBlocker("name", min_overlap=1),
                           QGramBlocker("name", min_overlap=3)),
        ]
        for composite in composites:
            expected = {(left.record_id, right.record_id)
                        for left in a for right in b
                        if composite.admits(left, right)}
            assert set(keys(composite.block(a, b))) == expected


class TestOperators:
    def test_or_builds_union(self):
        combined = QGramBlocker("name") | AttributeEquivalenceBlocker("city")
        assert isinstance(combined, UnionBlocker)
        assert len(combined.blockers) == 2

    def test_and_builds_intersection(self):
        combined = QGramBlocker("name") & AttributeEquivalenceBlocker("city")
        assert isinstance(combined, IntersectionBlocker)

    def test_rshift_builds_cascade(self):
        combined = OverlapBlocker("name") >> QGramBlocker("name",
                                                          min_overlap=3)
        assert isinstance(combined, CascadeBlocker)

    def test_chained_union_flattens(self):
        three = (QGramBlocker("name")
                 | AttributeEquivalenceBlocker("city")
                 | OverlapBlocker("name"))
        assert isinstance(three, UnionBlocker)
        assert len(three.blockers) == 3

    def test_chained_cascade_flattens(self):
        three = (OverlapBlocker("name")
                 >> QGramBlocker("name", min_overlap=2)
                 >> QGramBlocker("name", min_overlap=4))
        assert isinstance(three, CascadeBlocker)
        assert len(three.blockers) == 3
        assert isinstance(three.first, OverlapBlocker)

    def test_mixed_kinds_nest_instead_of_flattening(self):
        union = QGramBlocker("name") | AttributeEquivalenceBlocker("city")
        nested = union & OverlapBlocker("name")
        assert isinstance(nested, IntersectionBlocker)
        assert len(nested.blockers) == 2
        assert isinstance(nested.blockers[0], UnionBlocker)

    def test_operator_with_non_blocker_raises(self):
        with pytest.raises(TypeError):
            QGramBlocker("name") | "city"  # noqa: B018


class TestValidation:
    @pytest.mark.parametrize("kind", (UnionBlocker, IntersectionBlocker))
    def test_fewer_than_two_blockers_rejected(self, kind):
        with pytest.raises(ValueError, match="at least 2"):
            kind(QGramBlocker("name"))

    @pytest.mark.parametrize("kind", (UnionBlocker, IntersectionBlocker))
    def test_non_blocker_operand_rejected(self, kind):
        with pytest.raises(TypeError, match="must be blockers"):
            kind(QGramBlocker("name"), "not a blocker")

    def test_cascade_requires_a_filter_stage(self):
        with pytest.raises(ValueError, match="at least one filter"):
            CascadeBlocker(QGramBlocker("name"))

    def test_cascade_rejects_non_blocker_stage(self):
        with pytest.raises(TypeError, match="must be blockers"):
            CascadeBlocker(QGramBlocker("name"), object())


class TestParallel:
    def test_parallel_union_equals_sequential(self, tables):
        a, b = tables
        members = (QGramBlocker("name", min_overlap=2),
                   MinHashLSHBlocker("name", num_perm=16, bands=4,
                                     random_state=0),
                   AttributeEquivalenceBlocker("city"))
        sequential = UnionBlocker(*members, n_jobs=1)
        parallel = UnionBlocker(*members, n_jobs=2)
        assert keys(parallel.block(a, b)) == keys(sequential.block(a, b))

    def test_parallel_intersection_equals_sequential(self, tables):
        a, b = tables
        members = (QGramBlocker("name", min_overlap=1),
                   AttributeEquivalenceBlocker("city"))
        sequential = IntersectionBlocker(*members, n_jobs=1)
        parallel = IntersectionBlocker(*members, n_jobs=2)
        assert keys(parallel.block(a, b)) == keys(sequential.block(a, b))
