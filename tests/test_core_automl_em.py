"""Tests for the AutoMLEM matcher (pair-set level API)."""

import numpy as np
import pytest

from repro.core import AutoMLEM


@pytest.fixture(scope="module")
def splits(request):
    from repro.data.synthetic import load_benchmark
    benchmark = load_benchmark("fodors_zagats", seed=7, scale=0.35)
    return benchmark.splits(seed=0)


@pytest.fixture(scope="module")
def fitted(splits):
    train, valid, _ = splits
    matcher = AutoMLEM(n_iterations=5, forest_size=8, seed=0)
    matcher.fit(train, valid)
    return matcher


class TestFit:
    def test_high_f1_on_easy_dataset(self, fitted, splits):
        _, _, test = splits
        assert fitted.evaluate(test)["f1"] > 0.85

    def test_evaluate_returns_all_metrics(self, fitted, splits):
        _, _, test = splits
        result = fitted.evaluate(test)
        assert set(result) == {"precision", "recall", "f1"}
        assert all(0.0 <= v <= 1.0 for v in result.values())

    def test_predictions_binary(self, fitted, splits):
        _, _, test = splits
        assert set(fitted.predict(test).tolist()) <= {0, 1}

    def test_predict_proba_shape(self, fitted, splits):
        _, _, test = splits
        assert fitted.predict_proba(test).shape == (len(test), 2)

    def test_best_config_is_rf_only(self, fitted):
        assert fitted.best_config_["classifier:__choice__"] == "random_forest"

    def test_history_length(self, fitted):
        assert len(fitted.history_) == 5

    def test_describe_pipeline(self, fitted):
        text = fitted.describe_pipeline()
        assert "random_forest" in text

    def test_feature_generator_uses_table2(self, fitted, splits):
        train, _, _ = splits
        # 6 attributes: 5 string x16 + 1 numeric x4 = 84
        assert fitted.feature_generator_.num_features == 84


class TestConfiguration:
    def test_magellan_feature_plan_option(self, splits):
        train, valid, _ = splits
        matcher = AutoMLEM(feature_plan="magellan", n_iterations=2,
                           forest_size=8, seed=0)
        matcher.fit(train, valid)
        assert matcher.feature_generator_.num_features < 84

    def test_invalid_feature_plan(self):
        with pytest.raises(ValueError, match="feature_plan"):
            AutoMLEM(feature_plan="all")

    def test_all_model_space(self, splits):
        train, valid, _ = splits
        matcher = AutoMLEM(model_space="all", n_iterations=3,
                           forest_size=8, seed=0)
        matcher.fit(train, valid)
        assert matcher.best_score_ > 0.5

    def test_ablation_flags_reach_space(self, splits):
        train, valid, _ = splits
        matcher = AutoMLEM(include_data_preprocessing=False,
                           include_feature_preprocessing=False,
                           n_iterations=2, forest_size=8, seed=0)
        matcher.fit(train, valid)
        assert "rescaling:__choice__" not in matcher.best_config_
        assert "preprocessor:__choice__" not in matcher.best_config_

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            AutoMLEM().best_config_

    def test_fit_matrices_path(self, rng):
        n = 120
        y = (rng.random(n) < 0.3).astype(int)
        X = np.column_stack([y + rng.normal(0, 0.2, n), rng.random(n)])
        matcher = AutoMLEM(n_iterations=3, forest_size=8, seed=0)
        matcher.fit_matrices(X[:80], y[:80], X[80:], y[80:])
        assert matcher.evaluate_matrix(X[80:], y[80:])["f1"] > 0.7
        with pytest.raises(RuntimeError, match="fitted from matrices"):
            matcher.predict("not-a-matrix-path")


class TestTelemetry:
    def test_run_log_includes_feature_cache_stats(self, splits, tmp_path):
        from repro.automl import read_run_log

        train, valid, _ = splits
        path = tmp_path / "em-run.jsonl"
        matcher = AutoMLEM(n_iterations=3, forest_size=8, seed=0,
                           feature_cache=True, run_log=path)
        matcher.fit(train, valid)
        records = read_run_log(path)
        summary = [r for r in records if r["type"] == "summary"][0]
        assert summary["feature_plan"] == "autoem"
        assert summary["feature_cache"]["misses"] >= 1
        assert sum(1 for r in records if r["type"] == "trial") == 3

    def test_trial_knobs_reach_automl(self, rng):
        n = 80
        y = (rng.random(n) < 0.3).astype(int)
        X = np.column_stack([y + rng.normal(0, 0.2, n), rng.random(n)])
        matcher = AutoMLEM(n_iterations=2, forest_size=8, seed=0,
                           trial_timeout=30.0, trial_isolation="none")
        matcher.fit_matrices(X[:60], y[:60], X[60:], y[60:])
        assert matcher.automl_.trial_timeout == 30.0
        assert matcher.automl_.trial_isolation == "none"

    def test_active_run_log_passthrough(self, tmp_path):
        from repro.core import AutoMLEMActive

        active = AutoMLEMActive(
            init_size=10, trial_timeout=5.0,
            run_log=tmp_path / "active.jsonl",
            automl_kwargs=dict(n_iterations=2, forest_size=8))
        assert active.automl_kwargs["trial_timeout"] == 5.0
        assert active.automl_kwargs["run_log"] == tmp_path / "active.jsonl"
        # explicit automl_kwargs win over the shorthand
        explicit = AutoMLEMActive(
            init_size=10, trial_timeout=5.0,
            automl_kwargs=dict(trial_timeout=1.0))
        assert explicit.automl_kwargs["trial_timeout"] == 1.0
