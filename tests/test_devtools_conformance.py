"""REP007 conformance: the static registry checks against synthetic
trees and the real repo, plus a dynamic cross-check that every model in
``repro.automl.components.ALL_MODELS`` builds a pipeline with the full
estimator surface the search relies on."""

import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.automl.components import ALL_MODELS, build_config_space, build_pipeline
from repro.devtools.conformance import (
    check_components,
    check_similarity_registry,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A minimal, fully-conformant ml package: one classifier, one
#: transformer, both inheriting the introspection surface from a base.
GOOD_ML = """
class BaseEstimator:
    def get_params(self, deep=True):
        return {}
    def set_params(self, **params):
        return self

class GoodClassifier(BaseEstimator):
    def __init__(self, n_estimators=10, random_state=None):
        pass
    def fit(self, X, y):
        return self
    def predict(self, X):
        return X
    def predict_proba(self, X):
        return X

class GoodScaler(BaseEstimator):
    def __init__(self, with_mean=True):
        pass
    def fit(self, X, y=None):
        return self
    def transform(self, X):
        return X
"""


def make_tree(tmp_path, components_src, ml_src=GOOD_ML):
    """Lay out ``pkg/ml/estimators.py`` + ``pkg/automl/components.py``."""
    ml_dir = tmp_path / "pkg/ml"
    automl_dir = tmp_path / "pkg/automl"
    ml_dir.mkdir(parents=True)
    automl_dir.mkdir(parents=True)
    (ml_dir / "estimators.py").write_text(textwrap.dedent(ml_src))
    components = automl_dir / "components.py"
    components.write_text(textwrap.dedent(components_src))
    return components


def test_conformant_components_produce_no_findings(tmp_path):
    components = make_tree(tmp_path, """
        from .. import ml

        ALL_MODELS = ("good",)

        def _make_classifier(config, random_state):
            if config["classifier:__choice__"] == "good":
                return ml.GoodClassifier(n_estimators=5,
                                         random_state=random_state)

        def _make_rescaler(config):
            return ml.GoodScaler(with_mean=False)
        """)
    assert check_components(components) == []


def test_missing_class_is_reported(tmp_path):
    components = make_tree(tmp_path, """
        from .. import ml

        def _make_classifier(config, random_state):
            return ml.Vanished(random_state=random_state)
        """)
    findings = check_components(components)
    assert len(findings) == 1
    assert "ml.Vanished is not defined" in findings[0].message


def test_classifier_missing_predict_proba_is_reported(tmp_path):
    components = make_tree(tmp_path, """
        from .. import ml

        def _make_classifier(config, random_state):
            return ml.HalfClassifier(random_state=random_state)
        """, ml_src="""
        class HalfClassifier:
            def __init__(self, random_state=None):
                pass
            def fit(self, X, y):
                return self
            def predict(self, X):
                return X
        """)
    messages = [f.message for f in check_components(components)]
    assert any("no predict_proba()" in m for m in messages)
    # It also lacks the get_params/set_params introspection surface.
    assert any("lacks get_params()" in m for m in messages)


def test_method_resolution_follows_project_inheritance(tmp_path):
    components = make_tree(tmp_path, """
        from .. import ml

        def _make_classifier(config, random_state):
            return ml.Derived(random_state=random_state)
        """, ml_src=GOOD_ML + """
class Derived(GoodClassifier):
    pass
""")
    assert check_components(components) == []


def test_unknown_constructor_kwarg_is_reported(tmp_path):
    components = make_tree(tmp_path, """
        from .. import ml

        def _make_classifier(config, random_state):
            return ml.GoodClassifier(n_trees=5, random_state=random_state)
        """)
    findings = check_components(components)
    assert len(findings) == 1
    assert "n_trees=" in findings[0].message


def test_unthreaded_random_state_is_reported(tmp_path):
    components = make_tree(tmp_path, """
        from .. import ml

        def _make_classifier(config, random_state):
            return ml.GoodClassifier(n_estimators=5)
        """)
    findings = check_components(components)
    assert len(findings) == 1
    assert "random_state" in findings[0].message
    assert "irreproducible" in findings[0].message


def test_unhandled_all_models_entry_is_reported(tmp_path):
    components = make_tree(tmp_path, """
        from .. import ml

        ALL_MODELS = ("good", "phantom")

        def _make_classifier(config, random_state):
            if config["classifier:__choice__"] == "good":
                return ml.GoodClassifier(random_state=random_state)
        """)
    findings = check_components(components)
    assert len(findings) == 1
    assert "'phantom'" in findings[0].message


def test_registry_duplicate_and_missing_function_are_reported(tmp_path):
    pkg = tmp_path / "similarity"
    pkg.mkdir()
    (pkg / "sequence.py").write_text("def jaro(a, b):\n    return 0.0\n")
    registry = pkg / "registry.py"
    registry.write_text(textwrap.dedent("""
        from . import sequence as seq

        class SimilarityMeasure:
            def __init__(self, name, func):
                pass

        MEASURES = [
            SimilarityMeasure("jaro", seq.jaro),
            SimilarityMeasure("jaro", seq.jaro),
            SimilarityMeasure("ghost", seq.not_there),
        ]
        """))
    messages = [f.message for f in check_similarity_registry(registry)]
    assert any("duplicate measure name 'jaro'" in m for m in messages)
    assert any("seq.not_there does not exist" in m for m in messages)


def test_registry_bare_name_must_be_module_level(tmp_path):
    registry = tmp_path / "registry.py"
    registry.write_text(textwrap.dedent("""
        class SimilarityMeasure:
            def __init__(self, name, func):
                pass

        def real(a, b):
            return 1.0

        OK = SimilarityMeasure("real", real)
        BAD = SimilarityMeasure("fake", imaginary)
        """))
    messages = [f.message for f in check_similarity_registry(registry)]
    assert len(messages) == 1
    assert "imaginary" in messages[0]


# -- the real repo ------------------------------------------------------


def test_repo_components_conform():
    path = REPO_ROOT / "src/repro/automl/components.py"
    assert check_components(path) == []


def test_repo_similarity_registry_conforms():
    path = REPO_ROOT / "src/repro/similarity/registry.py"
    assert check_similarity_registry(path) == []


@pytest.mark.parametrize("model", ALL_MODELS)
def test_every_model_builds_a_full_estimator_surface(model):
    """Dynamic cross-check of what REP007 verifies statically: each
    registered model yields a pipeline whose steps all expose the
    search's required surface."""
    space = build_config_space(models=(model,), forest_size=4)
    config = space.sample(np.random.default_rng(0))
    pipeline = build_pipeline(config, random_state=0)
    for method in ("fit", "predict", "predict_proba"):
        assert callable(getattr(pipeline, method))
    for name, step in pipeline.pipeline.steps:
        assert callable(getattr(step, "get_params")), name
        assert callable(getattr(step, "set_params")), name
        params = step.get_params()
        assert isinstance(params, dict), name
