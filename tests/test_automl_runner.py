"""Tests for the fault-isolated trial runner and run telemetry."""

import json
import os
import time

import numpy as np
import pytest

from repro.automl import (
    AutoML,
    OptimizationHistory,
    RunLog,
    TrialResult,
    TrialRunner,
    build_config_space,
    read_run_log,
)


class TestTrialRunner:
    def test_successful_trial(self):
        outcome = TrialRunner().run(lambda: 0.75)
        assert outcome.ok
        assert outcome.score == 0.75
        assert outcome.error is None
        assert outcome.elapsed >= 0.0

    @pytest.mark.parametrize("exc", [
        MemoryError("allocation of 80 GiB failed"),
        OverflowError("math range error"),
        np.linalg.LinAlgError("SVD did not converge"),
        ValueError("bad config"),
        ZeroDivisionError("division by zero"),
    ])
    def test_all_nonfatal_exceptions_become_errors(self, exc):
        def explode():
            raise exc

        outcome = TrialRunner().run(explode)
        assert not outcome.ok
        assert outcome.score == 0.0
        assert type(exc).__name__ in outcome.error

    def test_error_includes_traceback_summary(self):
        def inner():
            raise MemoryError("boom")

        def outer():
            return inner()

        outcome = TrialRunner().run(outer)
        assert "MemoryError: boom" in outcome.error
        assert "in inner" in outcome.error  # the failing frame is named

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            TrialRunner().run(interrupted)

    def test_custom_error_score(self):
        def explode():
            raise ValueError("no")

        outcome = TrialRunner(error_score=-1.0).run(explode)
        assert outcome.score == -1.0

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError, match="isolation"):
            TrialRunner(isolation="thread")
        with pytest.raises(ValueError, match="timeout"):
            TrialRunner(timeout=0.0)

    def test_auto_resolution(self):
        assert TrialRunner(timeout=None).effective_isolation == "none"
        runner = TrialRunner(timeout=1.0)
        assert runner.effective_isolation in ("signal", "none")

    @pytest.mark.trial_timeout
    def test_signal_timeout_interrupts_trial(self, fast_trial_timeout):
        runner = TrialRunner(timeout=fast_trial_timeout,
                             isolation="signal")
        outcome = runner.run(lambda: time.sleep(30) or 1.0)
        assert not outcome.ok
        assert "TrialTimeout" in outcome.error
        assert outcome.elapsed < 5.0

    @pytest.mark.trial_timeout
    def test_signal_mode_restores_handler(self, fast_trial_timeout):
        import signal

        before = signal.getsignal(signal.SIGALRM)
        TrialRunner(timeout=fast_trial_timeout,
                    isolation="signal").run(lambda: 1.0)
        assert signal.getsignal(signal.SIGALRM) is before


class TestSubprocessIsolation:
    def test_score_round_trip(self):
        runner = TrialRunner(isolation="subprocess")
        outcome = runner.run(lambda: 0.625)
        assert outcome.ok
        assert outcome.score == 0.625

    def test_error_round_trip(self):
        def explode():
            raise MemoryError("huge allocation")

        outcome = TrialRunner(isolation="subprocess").run(explode)
        assert not outcome.ok
        assert "MemoryError: huge allocation" in outcome.error

    @pytest.mark.trial_timeout
    def test_timeout_terminates_worker(self, fast_trial_timeout):
        runner = TrialRunner(timeout=fast_trial_timeout,
                             isolation="subprocess")
        outcome = runner.run(lambda: time.sleep(30) or 1.0)
        assert not outcome.ok
        assert "TrialTimeout" in outcome.error
        assert outcome.elapsed < 10.0

    def test_hard_crash_is_reported_not_fatal(self):
        def segfault_stand_in():
            os._exit(17)  # dies without reporting, like a SIGKILL/OOM

        outcome = TrialRunner(isolation="subprocess").run(segfault_stand_in)
        assert not outcome.ok
        assert "ProcessDied" in outcome.error
        assert "17" in outcome.error


class TestRunLog:
    def test_trial_and_summary_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.trial(index=0, config={"x": 1}, score=0.5, elapsed=0.01,
                      error=None, random_state=42, incumbent_score=0.5)
            log.trial(index=1, config={"x": 2}, score=0.0, elapsed=0.02,
                      error="ValueError: no", random_state=43,
                      incumbent_score=0.5)
            log.summary(n_trials=2, best_score=0.5)
        records = read_run_log(path)
        assert [r["type"] for r in records] == ["trial", "trial", "summary"]
        assert records[1]["error"] == "ValueError: no"
        assert records[2]["best_score"] == 0.5

    def test_numpy_values_serialize(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.trial(index=0, config={"k": np.int64(3),
                                       "f": np.float64(0.25)},
                      score=np.float64(0.5), elapsed=0.0, error=None,
                      random_state=np.int64(7), incumbent_score=None)
        record = read_run_log(path)[0]
        assert record["config"] == {"k": 3, "f": 0.25}
        assert record["random_state"] == 7

    def test_ensure(self, tmp_path):
        assert RunLog.ensure(None) is None
        log = RunLog(tmp_path / "a.jsonl")
        assert RunLog.ensure(log) is log
        coerced = RunLog.ensure(tmp_path / "b.jsonl")
        assert isinstance(coerced, RunLog)
        coerced.close()
        log.close()

    def test_records_are_flushed_immediately(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path)
        log.trial(index=0, config={}, score=1.0, elapsed=0.0, error=None,
                  random_state=None, incumbent_score=1.0)
        # Readable *before* close: an interrupted run keeps its trials.
        assert len(read_run_log(path)) == 1
        log.close()


class TestHistoryPersistence:
    def make_history(self):
        history = OptimizationHistory()
        history.add(TrialResult({"a": 1}, 0.6, 0.1, None, random_state=11))
        history.add(TrialResult({"a": 2}, 0.0, 0.2,
                                "MemoryError: boom", random_state=12))
        history.add(TrialResult({"a": 3}, 0.8, 0.3, None, random_state=13))
        return history

    def test_save_load_round_trip(self, tmp_path):
        history = self.make_history()
        path = tmp_path / "history.jsonl"
        history.save(path)
        loaded = OptimizationHistory.load(path)
        assert len(loaded) == 3
        for original, restored in zip(history.trials, loaded.trials):
            assert restored.config == original.config
            assert restored.score == original.score
            assert restored.error == original.error
            assert restored.random_state == original.random_state
        assert loaded.best.config == {"a": 3}
        assert loaded.n_failed == 1

    def test_load_skips_summary_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.trial(index=0, config={"a": 1}, score=0.4, elapsed=0.0,
                      error=None, random_state=5, incumbent_score=0.4)
            log.summary(n_trials=1, best_score=0.4)
        loaded = OptimizationHistory.load(path)
        assert len(loaded) == 1
        assert loaded.best.score == 0.4

    def test_save_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "history.jsonl"
        self.make_history().save(path)
        assert len(OptimizationHistory.load(path)) == 3


@pytest.fixture()
def em_matrices(rng):
    n = 220
    y = (rng.random(n) < 0.2).astype(int)
    X = np.column_stack([
        np.clip(y * 0.8 + rng.normal(0.1, 0.25, n), 0, 1),
        rng.random(n),
        rng.random(n),
    ])
    X[rng.random(X.shape) < 0.05] = np.nan
    return X[:150], y[:150], X[150:], y[150:]


def _inject_failures(monkeypatch, fail_calls, exc_factory):
    """Make build_pipeline raise on the given 1-based call numbers."""
    from repro.automl import optimizer as optimizer_module

    original = optimizer_module.build_pipeline
    calls = {"n": 0}

    def sometimes_broken(config, random_state=0):
        calls["n"] += 1
        if calls["n"] in fail_calls:
            raise exc_factory()
        return original(config, random_state=random_state)

    monkeypatch.setattr(optimizer_module, "build_pipeline",
                        sometimes_broken)


class TestAutoMLIntegration:
    @pytest.mark.parametrize("exc_factory", [
        lambda: MemoryError("trial ate all the RAM"),
        lambda: OverflowError("overflow in preprocessor"),
        lambda: np.linalg.LinAlgError("PCA did not converge"),
    ])
    def test_search_survives_exploding_trials(self, em_matrices,
                                              monkeypatch, exc_factory):
        X_tr, y_tr, X_va, y_va = em_matrices
        space = build_config_space(forest_size=8)
        automl = AutoML(space, search="random", n_iterations=5, seed=0)
        _inject_failures(monkeypatch, {2, 4}, exc_factory)
        automl.fit(X_tr, y_tr, X_va, y_va)
        errors = [t for t in automl.history_.trials if t.error is not None]
        assert len(errors) == 2
        assert automl.best_score_ >= 0.0
        assert automl.predict(X_va).shape == y_va.shape

    def test_run_log_records_failures_and_summary(self, em_matrices,
                                                  monkeypatch, tmp_path):
        X_tr, y_tr, X_va, y_va = em_matrices
        path = tmp_path / "run.jsonl"
        space = build_config_space(forest_size=8)
        automl = AutoML(space, search="random", n_iterations=5, seed=0,
                        run_log=path)
        _inject_failures(monkeypatch, {2},
                         lambda: MemoryError("trial ate all the RAM"))
        automl.fit(X_tr, y_tr, X_va, y_va)
        records = read_run_log(path)
        trials = [r for r in records if r["type"] == "trial"]
        summaries = [r for r in records if r["type"] == "summary"]
        assert len(trials) == 5
        assert len(summaries) == 1
        assert "MemoryError" in trials[1]["error"]
        summary = summaries[0]
        assert summary["n_trials"] == 5
        assert summary["n_failed"] == 1
        assert summary["best_score"] == automl.best_score_
        assert summary["search"] == "random"
        assert summary["seed"] == 0
        assert summary["isolation"] == "none"
        assert summary["wall_time"] > 0
        # incumbent-so-far is monotone over successful trials
        curve = [t["incumbent_score"] for t in trials
                 if t["incumbent_score"] is not None]
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_run_log_is_valid_strict_json(self, em_matrices, tmp_path):
        X_tr, y_tr, X_va, y_va = em_matrices
        path = tmp_path / "run.jsonl"
        space = build_config_space(forest_size=8)
        AutoML(space, search="random", n_iterations=3, seed=0,
               run_log=path).fit(X_tr, y_tr, X_va, y_va)
        for line in path.read_text().splitlines():
            json.loads(line)  # every record parses on its own

    def test_resume_from_run_log(self, em_matrices, tmp_path):
        X_tr, y_tr, X_va, y_va = em_matrices
        space = build_config_space(forest_size=8)
        first_log = tmp_path / "first.jsonl"
        first = AutoML(space, search="random", n_iterations=3, seed=0,
                       run_log=first_log)
        first.fit(X_tr, y_tr, X_va, y_va)
        resumed_log = tmp_path / "resumed.jsonl"
        resumed = AutoML(space, search="random", n_iterations=6, seed=0,
                         run_log=resumed_log, resume_from=first_log)
        resumed.fit(X_tr, y_tr, X_va, y_va)
        assert len(resumed.history_) == 6
        for prior, replayed in zip(first.history_.trials,
                                   resumed.history_.trials):
            assert replayed.config == prior.config
            assert replayed.score == prior.score
            assert replayed.random_state == prior.random_state
        # the resumed run's log contains the *whole* run
        trials = [r for r in read_run_log(resumed_log)
                  if r["type"] == "trial"]
        assert len(trials) == 6
        assert resumed.best_score_ >= first.best_score_

    def test_resume_from_history_object(self, em_matrices):
        X_tr, y_tr, X_va, y_va = em_matrices
        space = build_config_space(forest_size=8)
        first = AutoML(space, search="random", n_iterations=2, seed=0)
        first.fit(X_tr, y_tr, X_va, y_va)
        resumed = AutoML(space, search="random", n_iterations=4, seed=0,
                         resume_from=first.history_)
        resumed.fit(X_tr, y_tr, X_va, y_va)
        assert len(resumed.history_) == 4
        assert resumed.history_.trials[0].config == \
            first.history_.trials[0].config

    def test_resume_keeps_pipeline_seed_stream_aligned(self, em_matrices):
        X_tr, y_tr, X_va, y_va = em_matrices
        space = build_config_space(forest_size=8)
        uninterrupted = AutoML(space, search="random", n_iterations=4,
                               seed=3)
        uninterrupted.fit(X_tr, y_tr, X_va, y_va)
        partial = AutoML(space, search="random", n_iterations=2, seed=3)
        partial.fit(X_tr, y_tr, X_va, y_va)
        resumed = AutoML(space, search="random", n_iterations=4, seed=3,
                         resume_from=partial.history_)
        resumed.fit(X_tr, y_tr, X_va, y_va)
        states = [t.random_state for t in resumed.history_.trials]
        expected = [t.random_state for t in uninterrupted.history_.trials]
        assert states == expected

    def test_resume_past_budget_just_reconstructs(self, em_matrices):
        X_tr, y_tr, X_va, y_va = em_matrices
        space = build_config_space(forest_size=8)
        first = AutoML(space, search="random", n_iterations=3, seed=0)
        first.fit(X_tr, y_tr, X_va, y_va)
        resumed = AutoML(space, search="random", n_iterations=3, seed=0,
                         resume_from=first.history_)
        resumed.fit(X_tr, y_tr, X_va, y_va)
        assert len(resumed.history_) == 3
        assert resumed.best_score_ == first.best_score_
        assert resumed.best_config_ == first.best_config_

    @pytest.mark.trial_timeout
    def test_hung_trial_times_out_and_search_completes(
            self, em_matrices, monkeypatch, tmp_path, fast_trial_timeout):
        X_tr, y_tr, X_va, y_va = em_matrices
        from repro.automl import optimizer as optimizer_module

        original = optimizer_module.build_pipeline
        calls = {"n": 0}

        def sometimes_hangs(config, random_state=0):
            calls["n"] += 1
            if calls["n"] == 2:
                time.sleep(30)
            return original(config, random_state=random_state)

        monkeypatch.setattr(optimizer_module, "build_pipeline",
                            sometimes_hangs)
        path = tmp_path / "run.jsonl"
        space = build_config_space(forest_size=8)
        automl = AutoML(space, search="random", n_iterations=4, seed=0,
                        trial_timeout=fast_trial_timeout, run_log=path)
        started = time.monotonic()
        automl.fit(X_tr, y_tr, X_va, y_va)
        assert time.monotonic() - started < 20.0
        timeouts = [t for t in automl.history_.trials
                    if t.error and "TrialTimeout" in t.error]
        assert len(timeouts) == 1
        assert automl.best_score_ >= 0.0
        logged = [r for r in read_run_log(path) if r["type"] == "trial"]
        assert sum(1 for r in logged
                   if r["error"] and "TrialTimeout" in r["error"]) == 1

    def test_trial_random_state_recorded_and_reused(self, em_matrices):
        X_tr, y_tr, X_va, y_va = em_matrices
        space = build_config_space(forest_size=8)
        automl = AutoML(space, search="random", n_iterations=4, seed=0)
        automl.fit(X_tr, y_tr, X_va, y_va)
        assert all(t.random_state is not None
                   for t in automl.history_.trials)
        best = automl.history_.best
        assert automl.best_random_state_ == best.random_state
        # The deployed pipeline is the exact model that earned
        # best_score_: re-scoring it on the holdout reproduces the score.
        from repro.ml.metrics import f1_score
        rescored = f1_score(y_va, automl.best_pipeline_.predict(X_va))
        assert rescored == pytest.approx(automl.best_score_)
