"""Tests for the named similarity-measure registry (Tables I/II rows)."""

import math

import pytest

from repro.similarity import (
    ALL_BOOLEAN_MEASURES,
    ALL_NUMERIC_MEASURES,
    ALL_STRING_MEASURES,
    DISTANCE_MEASURES,
    MEASURES,
    get_measure,
    score,
)
from repro.similarity.registry import SEQUENCE_MAX_CHARS


class TestRegistryContents:
    def test_sixteen_string_measures(self):
        # Table II lists exactly 16 string measures.
        assert len(ALL_STRING_MEASURES) == 16

    def test_four_numeric_measures(self):
        assert len(ALL_NUMERIC_MEASURES) == 4

    def test_one_boolean_measure(self):
        assert ALL_BOOLEAN_MEASURES == ("bool_exact_match",)

    def test_all_names_unique(self):
        names = list(MEASURES)
        assert len(names) == len(set(names)) == 21

    def test_expected_table2_rows_present(self):
        expected = {"lev_dist", "lev_sim", "jaro", "exact_match",
                    "jaro_winkler", "needleman_wunsch", "smith_waterman",
                    "monge_elkan", "overlap_space", "dice_space",
                    "cosine_space", "jaccard_space", "overlap_3gram",
                    "dice_3gram", "cosine_3gram", "jaccard_3gram"}
        assert expected == set(ALL_STRING_MEASURES)

    def test_distance_measures_flagged(self):
        assert "lev_dist" in DISTANCE_MEASURES
        assert "jaccard_space" not in DISTANCE_MEASURES


class TestLookup:
    def test_get_measure(self):
        assert get_measure("jaccard_space").name == "jaccard_space"

    def test_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="unknown similarity measure"):
            get_measure("jacard")


class TestInvocation:
    def test_tokenized_measure(self):
        assert score("jaccard_space", "new york", "new york city") == \
            pytest.approx(2 / 3)

    def test_qgram_measure_nonzero_on_typo(self):
        assert score("jaccard_3gram", "fenix", "fenyx") > 0.0

    def test_missing_value_gives_nan(self):
        assert math.isnan(score("jaccard_space", None, "x"))
        assert math.isnan(score("lev_dist", "x", None))
        assert math.isnan(score("abs_norm", None, None))

    def test_numeric_measure_coerces_strings(self):
        assert score("abs_norm", "10", "10") == 1.0

    def test_numeric_measure_nan_on_text(self):
        assert math.isnan(score("abs_norm", "ten", "10"))

    def test_boolean_measure(self):
        assert score("bool_exact_match", True, True) == 1.0

    def test_non_string_values_coerced(self):
        # Record values can be floats even for string measures.
        assert score("exact_match", 3.5, 3.5) == 1.0

    def test_every_string_measure_handles_empty(self):
        for name in ALL_STRING_MEASURES:
            value = score(name, "", "")
            assert not math.isinf(value)

    def test_every_measure_callable_on_typical_input(self):
        for name in ALL_STRING_MEASURES:
            value = score(name, "arnie mortons", "arnie morton's chicago")
            assert isinstance(value, float)
        for name in ALL_NUMERIC_MEASURES:
            assert isinstance(score(name, 12.5, 13.0), float)


class TestSequenceCap:
    def test_long_strings_are_capped_for_dp_measures(self):
        long_a = "a" * (SEQUENCE_MAX_CHARS + 500)
        long_b = "a" * (SEQUENCE_MAX_CHARS + 500) + "b"
        # Identical within the cap → distance 0 despite the trailing b.
        assert score("lev_dist", long_a, long_b) == 0.0

    def test_exact_match_is_not_capped(self):
        long_a = "a" * (SEQUENCE_MAX_CHARS + 500)
        long_b = long_a + "b"
        assert score("exact_match", long_a, long_b) == 0.0

    def test_token_measures_see_full_string(self):
        prefix = "x " * 60
        assert score("jaccard_space", prefix + "apple",
                     prefix + "banana") < 1.0
