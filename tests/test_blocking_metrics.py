"""Blocking metrics: completeness, reduction, histograms, telemetry."""

import json

import pytest

from repro.blocking import (
    BlockingLog,
    QGramBlocker,
    block_size_histogram,
    evaluate_blocking,
    gold_pair_keys,
    pair_completeness,
    reduction_ratio,
)
from repro.data import MATCH, NON_MATCH, PairSet, RecordPair, Table


@pytest.fixture()
def tables():
    a = Table("A", ["name"], [["arnie mortons"], ["arts deli"],
                              ["cafe bizou"]])
    b = Table("B", ["name"], [["arnie mortons of chicago"],
                              ["arts delicatessen"], ["cafe bizou"]])
    return a, b


def labeled_pairs(table_a, table_b, labels):
    pairs = [RecordPair(table_a.by_id(left), table_b.by_id(right), label)
             for (left, right), label in labels.items()]
    return PairSet(table_a, table_b, pairs)


class TestPairCompleteness:
    def test_full_recall(self, tables):
        a, b = tables
        candidates = QGramBlocker("name", min_overlap=2).block(a, b)
        gold = {(0, 0), (1, 1), (2, 2)}
        assert pair_completeness(candidates, gold) == pytest.approx(1.0)

    def test_partial_recall(self, tables):
        a, b = tables
        candidates = labeled_pairs(a, b, {(0, 0): MATCH})
        assert pair_completeness(candidates,
                                 {(0, 0), (1, 1)}) == pytest.approx(0.5)

    def test_vacuous_on_empty_gold(self, tables):
        a, b = tables
        candidates = labeled_pairs(a, b, {(0, 0): MATCH})
        assert pair_completeness(candidates, set()) == pytest.approx(1.0)

    def test_gold_pair_keys_filters_by_label(self, tables):
        a, b = tables
        pairs = labeled_pairs(a, b, {(0, 0): MATCH, (0, 1): NON_MATCH,
                                     (2, 2): MATCH})
        assert gold_pair_keys(pairs) == {(0, 0), (2, 2)}


class TestReductionRatio:
    def test_basic(self):
        assert reduction_ratio(10, 10, 10) == pytest.approx(0.9)

    def test_no_reduction(self):
        assert reduction_ratio(100, 10, 10) == pytest.approx(0.0)

    def test_empty_cross_product_is_vacuous(self):
        assert reduction_ratio(0, 0, 10) == pytest.approx(1.0)

    def test_negative_candidates_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            reduction_ratio(-1, 10, 10)


class TestBlockSizeHistogram:
    def test_power_of_two_buckets(self):
        hist = block_size_histogram([1, 1, 2, 3, 4, 7, 8, 100])
        assert hist == {"1": 2, "2": 1, "3-4": 2, "5-8": 2, "65-128": 1}

    def test_empty_sizes(self):
        assert block_size_histogram([]) == {}

    def test_empty_buckets_omitted(self):
        assert block_size_histogram([1, 100]) == {"1": 1, "65-128": 1}


class TestEvaluateBlocking:
    def test_report_fields(self, tables):
        a, b = tables
        report = evaluate_blocking(QGramBlocker("name", min_overlap=2),
                                   a, b, gold_pairs={(0, 0), (1, 1), (2, 2)})
        assert report.num_table_a == 3 and report.num_table_b == 3
        assert report.num_gold == 3
        assert report.pair_completeness == pytest.approx(1.0)
        assert 0.0 <= report.reduction_ratio < 1.0
        assert report.elapsed >= 0.0
        assert "QGramBlocker" in report.blocker
        assert report.block_sizes == {}  # no standing index supplied

    def test_index_path_reports_block_sizes(self, tables):
        a, b = tables
        blocker = QGramBlocker("name", min_overlap=2)
        index = blocker.index(b)
        direct = evaluate_blocking(blocker, a, b)
        probed = evaluate_blocking(blocker, a, b, index=index)
        assert probed.num_candidates == direct.num_candidates
        assert probed.block_sizes  # histogram present on the index path

    def test_to_dict_round_trips_through_json(self, tables):
        a, b = tables
        report = evaluate_blocking(QGramBlocker("name"), a, b)
        assert json.loads(json.dumps(report.to_dict())) == report.to_dict()

    def test_run_log_records(self, tables, tmp_path):
        a, b = tables
        log_path = tmp_path / "blocking.jsonl"
        evaluate_blocking(QGramBlocker("name", min_overlap=2), a, b,
                          gold_pairs={(0, 0)}, run_log=str(log_path),
                          dataset="demo")
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        blocking = [r for r in records if r["type"] == "blocking"]
        assert len(blocking) == 1
        assert blocking[0]["dataset"] == "demo"
        assert blocking[0]["num_gold"] == 1
        assert blocking[0]["pair_completeness"] == pytest.approx(1.0)

    def test_shared_log_stays_open(self, tables, tmp_path):
        a, b = tables
        log = BlockingLog(tmp_path / "shared.jsonl")
        evaluate_blocking(QGramBlocker("name"), a, b, run_log=log)
        evaluate_blocking(QGramBlocker("name", min_overlap=2), a, b,
                          run_log=log)
        log.close()
        lines = (tmp_path / "shared.jsonl").read_text().splitlines()
        assert len([ln for ln in lines
                    if json.loads(ln)["type"] == "blocking"]) == 2
