"""Tests for permutation importance and the LIME-style explainer."""

import numpy as np
import pytest

from repro.explain import LimeExplainer, permutation_importance
from repro.ml import LogisticRegression, RandomForestClassifier


@pytest.fixture(scope="module")
def model_and_data():
    rng = np.random.default_rng(3)
    n = 400
    X = rng.normal(size=(n, 4))
    # Only feature 1 matters.
    y = (X[:, 1] > 0).astype(int)
    model = RandomForestClassifier(n_estimators=16,
                                   random_state=0).fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_informative_feature_ranks_first(self, model_and_data):
        model, X, y = model_and_data
        report = permutation_importance(model.predict, X, y,
                                        ["a", "b", "c", "d"], n_repeats=3)
        assert report.top(1)[0][0] == "b"
        assert report.top(1)[0][1] > 0.1

    def test_noise_features_near_zero(self, model_and_data):
        model, X, y = model_and_data
        report = permutation_importance(model.predict, X, y, n_repeats=3)
        noise = [report.importances_mean[j] for j in (0, 2, 3)]
        assert max(abs(v) for v in noise) < 0.1

    def test_baseline_recorded(self, model_and_data):
        model, X, y = model_and_data
        report = permutation_importance(model.predict, X, y, n_repeats=2)
        assert report.baseline_score > 0.9

    def test_report_text(self, model_and_data):
        model, X, y = model_and_data
        report = permutation_importance(model.predict, X, y,
                                        ["a", "b", "c", "d"], n_repeats=2)
        text = report.to_text(2)
        assert "baseline score" in text
        assert "b" in text

    def test_name_count_validated(self, model_and_data):
        model, X, y = model_and_data
        with pytest.raises(ValueError, match="names for"):
            permutation_importance(model.predict, X, y, ["only-one"])

    def test_invalid_repeats(self, model_and_data):
        model, X, y = model_and_data
        with pytest.raises(ValueError, match="n_repeats"):
            permutation_importance(model.predict, X, y, n_repeats=0)


class TestLime:
    @pytest.fixture(scope="class")
    def linear_setup(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(500, 3))
        # Known linear ground truth: strong +feature0, weak -feature2.
        logits = 3.0 * X[:, 0] - 0.5 * X[:, 2]
        y = (logits + 0.1 * rng.normal(size=500) > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        explainer = LimeExplainer(model.predict_proba, X,
                                  ["f0", "f1", "f2"], n_samples=400,
                                  seed=0)
        return model, X, explainer

    def test_recovers_dominant_feature(self, linear_setup):
        _, X, explainer = linear_setup
        explanation = explainer.explain(X[0])
        assert explanation.top(1)[0][0] == "f0"

    def test_attribution_signs(self, linear_setup):
        _, X, explainer = linear_setup
        explanation = explainer.explain(X[0])
        by_name = dict(zip(explanation.feature_names,
                           explanation.attributions))
        assert by_name["f0"] > 0
        assert abs(by_name["f1"]) < abs(by_name["f0"])

    def test_local_fit_quality_near_boundary(self, linear_setup):
        # The linear surrogate explains most local variance where the
        # model is not saturated (saturated points are locally flat, so
        # low R² there is expected behaviour, not a defect).
        model, X, explainer = linear_setup
        probs = model.predict_proba(X)[:, 1]
        boundary = int(np.argmin(np.abs(probs - 0.5)))
        explanation = explainer.explain(X[boundary])
        assert explanation.local_fit_r2 > 0.5

    def test_predicted_probability_matches_model(self, linear_setup):
        model, X, explainer = linear_setup
        explanation = explainer.explain(X[7])
        assert explanation.predicted_probability == pytest.approx(
            model.predict_proba(X[7:8])[0, 1], abs=1e-9)

    def test_to_text(self, linear_setup):
        _, X, explainer = linear_setup
        text = explainer.explain(X[0]).to_text(2)
        assert "P(match)" in text

    def test_dimension_mismatch(self, linear_setup):
        _, _, explainer = linear_setup
        with pytest.raises(ValueError, match="features"):
            explainer.explain(np.zeros(7))

    def test_background_validation(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            LimeExplainer(lambda X: X, np.zeros(5))

    def test_nan_features_yield_finite_attributions(self):
        # EM feature vectors contain NaN for missing values; the
        # surrogate must stay finite (regression test).
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 4))
        X[rng.random(X.shape) < 0.2] = np.nan

        def proba(Z):
            score = np.nan_to_num(Z[:, 0])
            p1 = 1 / (1 + np.exp(-score))
            return np.column_stack([1 - p1, p1])

        explainer = LimeExplainer(proba, X, n_samples=200, seed=0)
        explanation = explainer.explain(X[0])
        assert np.isfinite(explanation.attributions).all()
        assert np.isfinite(explanation.local_fit_r2)

    def test_name_count_validated(self):
        with pytest.raises(ValueError, match="names for"):
            LimeExplainer(lambda X: X, np.zeros((5, 3)), ["a"])
