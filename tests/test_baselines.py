"""Tests for the Magellan and DeepMatcherLite baselines."""

import numpy as np
import pytest

from repro.baselines import DEFAULT_MODEL_ZOO, DeepMatcherLite, \
    MagellanMatcher


@pytest.fixture(scope="module")
def splits():
    from repro.data.synthetic import load_benchmark
    benchmark = load_benchmark("fodors_zagats", seed=11, scale=0.4)
    return benchmark.splits(seed=0)


class TestMagellan:
    def test_zoo_contents(self):
        assert set(DEFAULT_MODEL_ZOO) == {
            "decision_tree", "random_forest", "svm",
            "logistic_regression", "naive_bayes"}

    def test_fits_and_scores(self, splits):
        train, valid, test = splits
        matcher = MagellanMatcher(forest_size=8, seed=0).fit(train, valid)
        assert matcher.evaluate(test)["f1"] > 0.8

    def test_all_models_scored(self, splits):
        train, valid, _ = splits
        matcher = MagellanMatcher(forest_size=8, seed=0).fit(train, valid)
        assert set(matcher.validation_scores_) == set(DEFAULT_MODEL_ZOO)
        assert all(0.0 <= s <= 1.0
                   for s in matcher.validation_scores_.values())

    def test_best_is_argmax_of_validation(self, splits):
        train, valid, _ = splits
        matcher = MagellanMatcher(forest_size=8, seed=0).fit(train, valid)
        best = max(matcher.validation_scores_,
                   key=matcher.validation_scores_.get)
        assert matcher.best_model_name_ == best
        assert matcher.best_score_ == matcher.validation_scores_[best]

    def test_subset_of_models(self, splits):
        train, valid, _ = splits
        matcher = MagellanMatcher(models=("decision_tree",), seed=0)
        matcher.fit(train, valid)
        assert matcher.best_model_name_ == "decision_tree"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown models"):
            MagellanMatcher(models=("xgboost",))

    def test_uses_magellan_features(self, splits):
        train, valid, _ = splits
        matcher = MagellanMatcher(forest_size=8, seed=0).fit(train, valid)
        from repro.features import make_autoem_features
        autoem_width = make_autoem_features(train.table_a,
                                            train.table_b).num_features
        assert matcher.feature_generator_.num_features < autoem_width

    def test_unfitted_raises(self, splits):
        _, _, test = splits
        with pytest.raises(RuntimeError, match="not fitted"):
            MagellanMatcher().predict(test)


class TestDeepMatcherLite:
    def test_fits_and_scores(self, splits):
        train, valid, test = splits
        matcher = DeepMatcherLite(seed=0, epochs=20).fit(train, valid)
        assert matcher.evaluate(test)["f1"] > 0.6

    def test_comparison_vector_width(self, splits):
        train, valid, _ = splits
        matcher = DeepMatcherLite(embedding_dim=16, epochs=1, seed=0)
        matcher.fit(train, valid)
        X = matcher.transform(train)
        # per string attribute: |u-v| + u*v (2 * 2*dim) + 2 cosines +
        # 2 soft-alignment scores; per numeric: 2 * 3 scalars.
        from repro.features import infer_schema_types
        types = infer_schema_types(train.table_a, train.table_b)
        expected = sum(2 * (2 * 16) + 4 if t.is_string else 2 * 3
                       for t in types.values())
        assert X.shape == (len(train), expected)

    def test_transform_before_fit_raises(self, splits):
        train, _, _ = splits
        with pytest.raises(RuntimeError, match="call fit first"):
            DeepMatcherLite().transform(train)

    def test_identical_records_compare_to_zero_difference(self, splits):
        train, valid, _ = splits
        matcher = DeepMatcherLite(embedding_dim=8, epochs=1, seed=0)
        matcher.fit(train, valid)
        vector = matcher._attribute_vector("same text value", True)
        assert np.allclose(np.abs(vector - vector), 0.0)

    def test_hash_embedding_deterministic_across_instances(self):
        from repro.baselines.deepmatcher import _hash_embed
        v1 = _hash_embed(["alpha", "beta"], 16, salt=1)
        v2 = _hash_embed(["alpha", "beta"], 16, salt=1)
        np.testing.assert_array_equal(v1, v2)

    def test_hash_embedding_salt_differs(self):
        from repro.baselines.deepmatcher import _hash_embed
        v1 = _hash_embed(["alpha"], 16, salt=1)
        v2 = _hash_embed(["alpha"], 16, salt=2)
        assert not np.array_equal(v1, v2)

    def test_empty_tokens_zero_vector(self):
        from repro.baselines.deepmatcher import _hash_embed
        assert np.allclose(_hash_embed([], 8, salt=0), 0.0)

    def test_invalid_embedding_dim(self):
        with pytest.raises(ValueError, match="embedding_dim"):
            DeepMatcherLite(embedding_dim=2)

    def test_unfitted_predict_raises(self, splits):
        _, _, test = splits
        with pytest.raises(RuntimeError):
            DeepMatcherLite().predict(test)
