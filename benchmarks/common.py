"""Shared plumbing for the reproduction benches.

Every bench regenerates one paper artifact at the FAST experiment scale
(see ``repro.experiments.configs``), saves the resulting table under
``benchmarks/results/`` and asserts the *shape* of the paper's claim
(who wins, direction of trends) — never absolute numbers, which depend
on the synthetic-data substitution documented in DESIGN.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import FAST, ResultTable
from repro.experiments.configs import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Bench-time budget knobs: FAST scales with a reduced search budget so
#: the whole harness finishes in tens of minutes, not hours.  Two
#: generator seeds are averaged where the runner supports it (Table IV,
#: Figure 9) because the scaled test sets are small enough that a single
#: draw is noisy.
BENCH = ExperimentConfig(scales=FAST.scales, automl_iterations=24,
                         forest_size=32, generator_seeds=(1, 2),
                         split_seed=0)

#: Lighter knobs for the active-learning figures (13-15) and the
#: future-work loops: each cell already averages two algorithm seeds and
#: runs many labeling iterations, so the per-run AutoML budget is reduced
#: to keep the whole harness inside tens of minutes.
ACTIVE_BENCH = ExperimentConfig(scales=FAST.scales, automl_iterations=15,
                                forest_size=24, generator_seeds=(1,),
                                split_seed=0)


def save_table(table: ResultTable, name: str) -> None:
    """Persist a result table (markdown) and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    path.write_text(table.to_markdown() + "\n", encoding="utf-8")
    print()
    print(table.to_text())


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)
