"""Monitoring-tap overhead bench: serving with vs without a drift
monitor attached.

The :class:`~repro.monitor.drift.FeatureDriftMonitor` rides the serving
path as a tap — the matcher hands it the feature matrix it already
computed, so the monitor's marginal cost is bin counting plus reservoir
bookkeeping, never a second featurization.  This bench makes that claim
measurable: identical request streams are served through the same
bundle with and without the monitor, best-of-``repeats`` wall times are
compared, and the report carries the overhead fraction the perf gate
(``pytest benchmarks/test_bench_monitor.py --perf``) holds under 10%.

Usage::

    python benchmarks/bench_monitor.py [--batches 40]
    python benchmarks/bench_monitor.py --check   # exit 1 over the gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import AutoMLEM  # noqa: E402
from repro.data.synthetic import load_benchmark  # noqa: E402
from repro.monitor import FeatureDriftMonitor, request_batches  # noqa: E402
from repro.serve import StreamMatcher  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_monitor.json"

#: The acceptance gate: monitored serving may cost at most this
#: fraction more wall time than unmonitored serving.
OVERHEAD_LIMIT = 0.10


def run_bench(scale: float = 0.5, n_batches: int = 40,
              batch_pairs: int = 32, repeats: int = 3,
              seed: int = 0) -> dict:
    """Serve one fixed request stream monitored and unmonitored."""
    benchmark = load_benchmark("fodors_zagats", seed=seed, scale=scale)
    train, valid, test = benchmark.splits(seed=seed)
    matcher = AutoMLEM(n_iterations=2, forest_size=8, seed=seed)
    matcher.fit(train, valid)
    bundle = matcher.export_bundle()
    batches = list(request_batches(test, batch_pairs,
                                   n_batches=n_batches, seed=seed))

    def serve(monitor: FeatureDriftMonitor | None) -> float:
        stream = StreamMatcher(bundle, monitor=monitor)
        start = time.perf_counter()
        for batch in batches:
            stream.submit(batch)
        return time.perf_counter() - start

    serve(None)  # warm caches (similarity tables, imports)
    baseline = min(serve(None) for _ in range(repeats))
    monitored_times = []
    last_monitor: FeatureDriftMonitor | None = None
    for _ in range(repeats):
        last_monitor = FeatureDriftMonitor.for_bundle(bundle, min_rows=50)
        monitored_times.append(serve(last_monitor))
    monitored = min(monitored_times)
    overhead = (monitored - baseline) / baseline
    assert last_monitor is not None
    report = last_monitor.report()
    return {
        "n_batches": n_batches,
        "batch_pairs": batch_pairs,
        "repeats": repeats,
        "baseline_seconds": baseline,
        "monitored_seconds": monitored,
        "overhead_fraction": overhead,
        "overhead_limit": OVERHEAD_LIMIT,
        "monitored_rows": report.n_rows,
        "drift_report_sufficient": report.sufficient,
    }


def check_report(report: dict, limit: float = OVERHEAD_LIMIT) -> int:
    """0 when the overhead gate holds (and the tap saw every row)."""
    if report["overhead_fraction"] >= limit:
        return 1
    if report["monitored_rows"] != \
            report["n_batches"] * report["batch_pairs"]:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batches", type=int, default=40)
    parser.add_argument("--batch-pairs", type=int, default=32)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the overhead gate holds")
    args = parser.parse_args(argv)
    report = run_bench(scale=args.scale, n_batches=args.batches,
                       batch_pairs=args.batch_pairs,
                       repeats=args.repeats, seed=args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"baseline {report['baseline_seconds']:.3f}s  monitored "
          f"{report['monitored_seconds']:.3f}s  overhead "
          f"{report['overhead_fraction']:+.2%} "
          f"(limit {OVERHEAD_LIMIT:.0%})")
    if args.check:
        return check_report(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
