"""Figure 9: Table I vs Table II feature generation under AutoML (E7)."""

import numpy as np
from common import BENCH, run_once, save_table

from repro.experiments import run_fig9


def test_fig9_feature_generation_ablation(benchmark):
    table = run_once(benchmark, lambda: run_fig9(BENCH))
    save_table(table, "fig9")
    assert len(table) == 8
    deltas = np.asarray(table.column("delta"))
    # Paper's takeaway: generate-everything features never hurt much and
    # help on average (its per-dataset gains range +0 .. +11.1).
    assert deltas.mean() > -1.0
    assert deltas.min() > -8.0
    # Table II is always wider than Table I.
    for row in table.rows:
        assert row["autoem_nfeat"] > row["magellan_nfeat"]
    print(f"\nmean ΔF1 (Table II - Table I) = {deltas.mean():+.1f} "
          "(paper +3.5)")
