"""Opt-in perf gate: the drift-monitor tap adds < 10% serving latency.

Skipped unless pytest is invoked with ``--perf`` (see conftest):

    PYTHONPATH=src python -m pytest benchmarks/test_bench_monitor.py --perf
"""

import json

import pytest

from bench_monitor import OVERHEAD_LIMIT, check_report, run_bench

pytestmark = pytest.mark.perf


def test_monitor_tap_overhead_under_limit(tmp_path):
    report = run_bench(n_batches=40, batch_pairs=32, repeats=3, seed=0)
    (tmp_path / "bench_monitor.json").write_text(
        json.dumps(report, indent=2), encoding="utf-8")
    assert check_report(report) == 0, report
    assert report["overhead_fraction"] < OVERHEAD_LIMIT
    # The cheap tap still did its whole job: every served row landed in
    # the live state and the verdict had enough data.
    assert report["monitored_rows"] == 40 * 32
    assert report["drift_report_sufficient"]
