"""Bench-suite configuration: make ``common`` importable from any cwd,
and gate opt-in perf checks behind ``--perf``."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_addoption(parser):
    parser.addoption(
        "--perf", action="store_true", default=False,
        help="run opt-in performance regression checks (marker 'perf')")
    parser.addoption(
        "--run-log-dir", default=None,
        help="write JSONL trial telemetry of every AutoML search the "
             "benches launch to numbered files under this directory")


@pytest.fixture(scope="session", autouse=True)
def _route_run_logs(request):
    """Point runner-launched searches' telemetry at --run-log-dir."""
    from repro.experiments import runners

    target = request.config.getoption("--run-log-dir")
    if target is None:
        yield
        return
    Path(target).mkdir(parents=True, exist_ok=True)
    runners.set_run_log_dir(target)
    yield
    runners.set_run_log_dir(None)


def pytest_collection_modifyitems(config, items):
    if config.getoption("--perf"):
        return
    skip_perf = pytest.mark.skip(reason="perf check: pass --perf to run")
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip_perf)
