"""Bench-suite configuration: make ``common`` importable from any cwd,
and gate opt-in perf checks behind ``--perf``."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_addoption(parser):
    parser.addoption(
        "--perf", action="store_true", default=False,
        help="run opt-in performance regression checks (marker 'perf')")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--perf"):
        return
    skip_perf = pytest.mark.skip(reason="perf check: pass --perf to run")
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip_perf)
