"""Table III: benchmark dataset inventory (E4)."""

from common import BENCH, run_once, save_table

from repro.experiments import run_table3


def test_table3_dataset_summary(benchmark):
    table = run_once(benchmark, lambda: run_table3(BENCH))
    save_table(table, "table3")
    assert len(table) == 8
    # Difficulty tiers mirror Table III: the small datasets are generated
    # at full size (exact pair counts), the large ones scaled down.
    by_name = {row["dataset"]: row for row in table.rows}
    assert by_name["Fodors-Zagats"]["train_size"] == 757
    assert by_name["Fodors-Zagats"]["test_size"] == 189
    assert by_name["BeerAdvo-RateBeer"]["positives"] == 68
    assert by_name["iTunes-Amazon"]["num_attr"] == 8
    assert by_name["Abt-Buy"]["num_attr"] == 3
