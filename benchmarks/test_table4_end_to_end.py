"""Table IV: Magellan vs AutoML-EM end-to-end (E5, Finding 1)."""

import numpy as np
from common import BENCH, run_once, save_table

from repro.experiments import run_table4


def test_table4_magellan_vs_automl_em(benchmark):
    table = run_once(benchmark, lambda: run_table4(BENCH))
    save_table(table, "table4")
    assert len(table) == 8
    deltas = np.asarray(table.column("delta"))
    magellan = np.asarray(table.column("magellan"))
    autoem = np.asarray(table.column("automl_em"))
    # Finding 1's shape: AutoML-EM wins on average (paper: +5.8 F1) and
    # never loses catastrophically on any dataset.
    assert deltas.mean() > 0.0
    assert deltas.min() > -8.0
    # The easy tier stays easy for both systems.
    by_name = {row["dataset"]: row for row in table.rows}
    assert by_name["fodors_zagats"]["automl_em"] > 95.0
    assert by_name["dblp_acm"]["automl_em"] > 95.0
    # The hard tier stays hard — that's where the automation gap lives.
    assert by_name["abt_buy"]["magellan"] < 75.0
    assert by_name["amazon_google"]["magellan"] < 75.0
    print(f"\nmean Magellan={magellan.mean():.1f} (paper 78.2), "
          f"mean AutoML-EM={autoem.mean():.1f} (paper 84.5), "
          f"mean ΔF1={deltas.mean():+.1f} (paper +6.3)")
