"""Extra ablations beyond the paper's figures (DESIGN.md section 5)."""

from common import BENCH, run_once, save_table

from repro.experiments import (
    run_blocking_study,
    run_concept_drift,
    run_search_comparison,
)


def test_extra_search_algorithms(benchmark):
    table = run_once(benchmark,
                     lambda: run_search_comparison(BENCH, "abt_buy"))
    save_table(table, "extra_search")
    scores = {row["search"]: row["valid_f1"] for row in table.rows}
    assert set(scores) == {"random", "smac", "tpe"}
    # Model-based search should not lose badly to random at equal budget.
    assert scores["smac"] >= scores["random"] - 6.0
    print(f"\nsearch comparison: {scores}")


def test_extra_concept_drift_guard(benchmark):
    table = run_once(benchmark, lambda: run_concept_drift(BENCH))
    save_table(table, "extra_concept_drift")
    by_guard = {row["ratio_preserved"]: row for row in table.rows}
    assert set(by_guard) == {True, False}
    # The α guard should not hurt; machine-label accuracy stays high.
    assert by_guard[True]["machine_label_accuracy"] > 60.0
    print(f"\nguard on: f1={by_guard[True]['test_f1']:.1f} "
          f"acc={by_guard[True]['machine_label_accuracy']:.1f} | "
          f"guard off: f1={by_guard[False]['test_f1']:.1f} "
          f"acc={by_guard[False]['machine_label_accuracy']:.1f}")


def test_extra_blocking_strategies(benchmark):
    table = run_once(benchmark,
                     lambda: run_blocking_study("fodors_zagats", seed=1))
    save_table(table, "extra_blocking")
    assert len(table) >= 2
    for row in table.rows:
        # Every blocker must prune most of the cross product while keeping
        # decent recall (the paper's Section II-A premise).
        assert row["reduction_pct"] > 50.0
    best_recall = max(row["recall_pct"] for row in table.rows)
    assert best_recall > 80.0
