"""Figure 14: effect of the initial training-data size (E11)."""

import numpy as np
from common import ACTIVE_BENCH as BENCH, run_once, save_table

from repro.experiments import run_fig14


def test_fig14_initial_size_sweep(benchmark):
    table = run_once(
        benchmark,
        lambda: run_fig14(BENCH, init_sizes=(30, 100, 500), ac_batch=20,
                          st_batch=200, n_iterations=10))
    save_table(table, "fig14")
    assert len(table) == 6

    def rows_for(init):
        return [row for row in table.rows if row["init"] == init]

    # Paper's takeaway: with a reasonable init (>=100) the hybrid helps;
    # with init=30 the initial model is too weak for self-training, so no
    # benefit is expected there.
    gains_large_init = [row["automl_em_active"] - row["ac_automl_em"]
                        for init in (100, 500) for row in rows_for(init)]
    assert np.mean(gains_large_init) > -1.0
    assert max(gains_large_init) > 0.0
    print(f"\nmean gain at init>=100: {np.mean(gains_large_init):+.1f} F1")
