"""Figure 13: AutoML-EM-Active vs AC+AutoML-EM across label budgets (E10)."""

import numpy as np
from common import ACTIVE_BENCH as BENCH, run_once, save_table

from repro.experiments import run_fig13


def test_fig13_label_budget_sweep(benchmark):
    # Paper: init=500, st_batch=200, AL labels in {40,160,400}.  At bench
    # scale we use ac_batch=40 so 400 labels = 10 loop iterations.
    table = run_once(
        benchmark,
        lambda: run_fig13(BENCH, label_budgets=(40, 160, 400),
                          init_size=500, ac_batch=40, st_batch=200))
    save_table(table, "fig13")
    assert len(table) == 6
    hybrid = np.asarray(table.column("automl_em_active"))
    baseline = np.asarray(table.column("ac_automl_em"))
    # Paper's takeaway: self-training labels help — the hybrid beats pure
    # active learning on average and in most cells.
    assert (hybrid - baseline).mean() > 0.0
    assert int((hybrid >= baseline - 1e-9).sum()) >= 4
    print(f"\nmean gain from self-training: "
          f"{(hybrid - baseline).mean():+.1f} F1")
