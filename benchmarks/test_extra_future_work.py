"""Benches for the paper's future-work extensions (implemented here).

Conclusion of the paper: explanation tools, meta-learning speed-ups and
alternative active-learning strategies are listed as future research.
These benches exercise the implementations this repo ships.
"""

from common import ACTIVE_BENCH, BENCH, run_once, save_table

from repro.experiments import (
    run_ensemble_ablation,
    run_labeler_study,
    run_metalearning_warmstart,
    run_query_strategies,
)


def test_future_query_strategies(benchmark):
    table = run_once(benchmark, lambda: run_query_strategies(ACTIVE_BENCH))
    save_table(table, "extra_query_strategies")
    scores = {row["strategy"]: row["test_f1"] for row in table.rows}
    assert set(scores) == {"uncertainty", "margin", "entropy", "committee",
                           "random"}
    informed = [scores[s] for s in ("uncertainty", "margin", "entropy",
                                    "committee")]
    # At least one informed strategy should beat passive random sampling.
    assert max(informed) >= scores["random"] - 1.0
    print(f"\nquery strategies: "
          + " ".join(f"{k}={v:.1f}" for k, v in scores.items()))


def test_future_ensemble_selection(benchmark):
    table = run_once(benchmark, lambda: run_ensemble_ablation(BENCH))
    save_table(table, "extra_ensemble")
    by_size = {row["ensemble_size"]: row for row in table.rows}
    # Greedy selection optimizes validation F1, so it can only match or
    # beat the single best there.
    assert by_size[8]["valid_f1"] >= by_size[1]["valid_f1"] - 1e-6
    print("\nensemble sizes: " + " ".join(
        f"{k}->v{row['valid_f1']:.1f}/t{row['test_f1']:.1f}"
        for k, row in sorted(by_size.items())))


def test_future_metalearning_warmstart(benchmark):
    table = run_once(benchmark, lambda: run_metalearning_warmstart(BENCH))
    save_table(table, "extra_metalearning")
    by_variant = {row["variant"]: row for row in table.rows}
    # The warm start sees strictly more information at the same budget;
    # it should not be far behind the cold start and often leads.
    assert by_variant["warm"]["valid_f1"] >= \
        by_variant["cold"]["valid_f1"] - 6.0
    print(f"\nwarm={by_variant['warm']['valid_f1']:.1f} "
          f"cold={by_variant['cold']['valid_f1']:.1f} (valid F1)")


def test_future_label_inference(benchmark):
    table = run_once(benchmark, lambda: run_labeler_study(BENCH))
    save_table(table, "extra_labelers")
    by_name = {row["labeler"]: row for row in table.rows}
    assert set(by_name) == {"transitivity", "label_propagation"}
    # Inference only counts if the inferred labels are trustworthy.
    for row in table.rows:
        if row["inferred"] > 0:
            assert row["accuracy_pct"] > 80.0
    print("\n" + " | ".join(
        f"{k}: {v['inferred']} labels @ {v['accuracy_pct']:.1f}%"
        for k, v in by_name.items()))
