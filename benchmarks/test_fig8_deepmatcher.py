"""Figure 8: AutoML-EM vs DeepMatcher (E6, Finding 2)."""

import numpy as np
from common import BENCH, run_once, save_table

from repro.experiments import run_fig8


def test_fig8_automl_em_vs_deepmatcher(benchmark):
    table = run_once(benchmark, lambda: run_fig8(BENCH))
    save_table(table, "fig8")
    assert len(table) == 8
    autoem = np.asarray(table.column("automl_em"))
    deep = np.asarray(table.column("deepmatcher"))
    # Finding 2's shape: the non-deep AutoML-EM is competitive with the
    # deep baseline overall — comparable average, not uniformly behind.
    assert autoem.mean() >= deep.mean() - 5.0
    wins = int((autoem >= deep - 1e-9).sum())
    assert wins >= 3  # AutoML-EM holds its own on a good share of datasets
    print(f"\nmean AutoML-EM={autoem.mean():.1f}, "
          f"mean DeepMatcherLite={deep.mean():.1f}, "
          f"AutoML-EM wins/ties {wins}/8")
