"""Opt-in perf regression check for the columnar featuregen engine.

Skipped unless pytest is invoked with ``--perf`` (see conftest) so the
tier-1 suite stays fast:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_featuregen.py --perf
"""

import json

import pytest

from bench_featuregen import run_bench

pytestmark = pytest.mark.perf


def test_columnar_not_slower_than_naive(tmp_path):
    report = run_bench(n_pairs=2000, duplication=4, n_jobs=2, seed=0)
    (tmp_path / "bench_featuregen.json").write_text(
        json.dumps(report, indent=2), encoding="utf-8")
    assert report["speedup_columnar_vs_naive"] >= 1.0, report["paths"]
    # The cache-hit path must be effectively free relative to naive.
    assert report["speedup_cached_vs_naive"] >= 1.0, report["paths"]
