"""Blocking throughput bench: indexed blockers vs the naive filter.

Builds a synthetic duplicate-detection workload — two N-record tables
where ``table_a[i]`` is ``table_b[i]`` with up to two character edits,
gold pairs ``(i, i)`` — then measures each indexed blocker
(:class:`~repro.blocking.QGramBlocker`,
:class:`~repro.blocking.MinHashLSHBlocker`) on three axes:

* **quality** — pair completeness against gold and reduction ratio over
  the ``N x N`` cross product;
* **indexed wall time** — index build + probe, the path ``repro block``
  and :class:`~repro.serve.matcher.StreamMatcher` take;
* **naive wall time** — the ``O(n*m)`` per-pair ``admits`` reference,
  timed on a small slice of the cross product and extrapolated
  (honestly labeled as such in the report: per-pair cost is constant,
  so the extrapolation is linear in pair count).

The indexed candidates restricted to the naive slice are asserted equal
to the naive slice's output first — the speedup compares two paths that
provably return the same pairs.  Results go to ``BENCH_blocking.json``
at the repo root.

Usage::

    python benchmarks/bench_blocking.py [--records 5000]
    python benchmarks/bench_blocking.py --check   # exit 1 unless the
                                                  # quality gates hold

``--check`` enforces >= 0.98 pair completeness and >= 0.95 reduction
ratio for both blockers, plus the 10x indexed-vs-naive speedup at full
scale (>= 2000 records; smaller runs only require parity, so the smoke
test stays cheap).  A tier-1 smoke runs this at small scale
(``tests/test_bench_blocking_smoke.py``); the full-scale speedup gate
also runs as an opt-in perf marker
(``pytest benchmarks/test_bench_blocking.py --perf``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.blocking import (  # noqa: E402
    MinHashLSHBlocker,
    QGramBlocker,
    pair_completeness,
    reduction_ratio,
)
from repro.data.table import Table  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_blocking.json"

#: Full-scale record count at which the 10x speedup gate applies; below
#: it index-build overhead dominates and only parity is enforced.
FULL_SCALE = 2000


def _make_vocab(size: int, rng: np.random.Generator) -> list[str]:
    """Random 5-8 letter words — synthetic, but with the right q-gram
    collision statistics (any two words rarely share a trigram)."""
    vocab = []
    for _ in range(size):
        length = int(rng.integers(5, 9))
        vocab.append("".join(chr(97 + int(c))
                             for c in rng.integers(0, 26, size=length)))
    return vocab


def _perturb(text: str, rng: np.random.Generator) -> str:
    """Up to two single-character substitutions — the dirty-copy model.

    Each substitution disturbs at most ``q`` q-grams, so a ~20-gram
    name keeps a large exact overlap and a Jaccard well above the LSH
    threshold; both blockers *should* keep every gold pair."""
    chars = list(text)
    for _ in range(int(rng.integers(0, 3))):
        pos = int(rng.integers(0, len(chars)))
        chars[pos] = chr(97 + int(rng.integers(0, 26)))
    return "".join(chars)


def build_workload(n_records: int, seed: int = 0,
                   vocab_size: int = 2000) -> tuple[Table, Table, set]:
    """Two tables of 3-word names where row i of A is a dirty copy of
    row i of B; gold matching pairs are exactly the diagonal."""
    rng = np.random.default_rng(seed)
    vocab = _make_vocab(vocab_size, rng)
    rows_a, rows_b = [], []
    for _ in range(n_records):
        words = rng.integers(0, vocab_size, size=3)
        base = " ".join(vocab[int(w)] for w in words)
        rows_b.append([base])
        rows_a.append([_perturb(base, rng)])
    table_a = Table("bench_dirty", ["name"], rows_a)
    table_b = Table("bench_clean", ["name"], rows_b)
    gold = {(i, i) for i in range(n_records)}
    return table_a, table_b, gold


def _time_naive(blocker, table_a: Table, table_b: Table,
                slice_size: int) -> dict:
    """Time the O(n*m) admits() reference on a slice and extrapolate."""
    sub_a = list(table_a)[:slice_size]
    sub_b = list(table_b)[:slice_size]
    start = time.perf_counter()
    kept = {(left.record_id, right.record_id)
            for left in sub_a for right in sub_b
            if blocker.admits(left, right)}
    slice_seconds = time.perf_counter() - start
    scale = (table_a.num_rows * table_b.num_rows) / (len(sub_a) * len(sub_b))
    return {
        "slice_records": slice_size,
        "slice_seconds": round(slice_seconds, 6),
        "extrapolated": scale > 1.0,
        "extrapolated_seconds": round(slice_seconds * scale, 6),
        "_slice_keys": kept,
    }


def _run_blocker(name: str, make_blocker, table_a: Table, table_b: Table,
                 gold: set, naive_slice: int) -> dict:
    # Fresh instances per path so neither measurement inherits the
    # other's warm token/signature caches.
    naive = _time_naive(make_blocker(), table_a, table_b, naive_slice)

    blocker = make_blocker()
    start = time.perf_counter()
    index = blocker.index(table_b)
    index_seconds = time.perf_counter() - start
    start = time.perf_counter()
    candidates = index.probe(table_a)
    probe_seconds = time.perf_counter() - start
    total_seconds = index_seconds + probe_seconds

    # Parity before speed: the indexed path restricted to the naive
    # slice must return exactly the naive filter's pairs.
    slice_keys = {pair.key for pair in candidates
                  if pair.key[0] < naive_slice and pair.key[1] < naive_slice}
    if slice_keys != naive.pop("_slice_keys"):
        raise AssertionError(
            f"{name}: indexed pairs diverge from the naive reference")

    return {
        "params": repr(blocker),
        "num_candidates": len(candidates),
        "pair_completeness": round(pair_completeness(candidates, gold), 6),
        "reduction_ratio": round(
            reduction_ratio(len(candidates), table_a.num_rows,
                            table_b.num_rows), 6),
        "indexed": {
            "index_seconds": round(index_seconds, 6),
            "probe_seconds": round(probe_seconds, 6),
            "total_seconds": round(total_seconds, 6),
        },
        "naive": naive,
        "speedup_vs_naive": round(
            naive["extrapolated_seconds"] / max(total_seconds, 1e-9), 2),
    }


def run_bench(n_records: int = 5000, seed: int = 0,
              naive_slice: int = 400) -> dict:
    naive_slice = min(naive_slice, n_records)
    table_a, table_b, gold = build_workload(n_records, seed=seed)
    blockers = {
        "qgram": lambda: QGramBlocker("name", q=3, min_overlap=4),
        "minhash_lsh": lambda: MinHashLSHBlocker(
            "name", num_perm=126, bands=42, random_state=seed),
    }
    return {
        "workload": {
            "n_records": n_records,
            "cross_product": n_records * n_records,
            "num_gold": len(gold),
            "seed": seed,
        },
        "blockers": {
            name: _run_blocker(name, make, table_a, table_b, gold,
                               naive_slice)
            for name, make in blockers.items()
        },
    }


def check_report(report: dict, out=sys.stderr) -> int:
    """The ``--check`` gates; returns a process exit code."""
    failures = []
    full_scale = report["workload"]["n_records"] >= FULL_SCALE
    for name, result in report["blockers"].items():
        if result["pair_completeness"] < 0.98:
            failures.append(f"{name}: pair completeness "
                            f"{result['pair_completeness']} < 0.98")
        if result["reduction_ratio"] < 0.95:
            failures.append(f"{name}: reduction ratio "
                            f"{result['reduction_ratio']} < 0.95")
        if full_scale and result["speedup_vs_naive"] < 10.0:
            failures.append(f"{name}: indexed speedup "
                            f"{result['speedup_vs_naive']}x < 10x")
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=out)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=5000,
                        help="rows per table (default 5000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--naive-slice", type=int, default=400,
                        help="cross-product slice for naive timing "
                             "(default 400x400, then extrapolated)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"report path (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the quality gates hold")
    args = parser.parse_args(argv)

    report = run_bench(n_records=args.records, seed=args.seed,
                       naive_slice=args.naive_slice)
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    if args.check:
        return check_report(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
