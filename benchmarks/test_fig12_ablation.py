"""Figure 12: ablating DP / FP modules of the found pipeline (E9)."""

from common import BENCH, run_once, save_table

from repro.experiments import run_fig12


def test_fig12_pipeline_ablation(benchmark):
    table = run_once(benchmark, lambda: run_fig12(BENCH))
    save_table(table, "fig12")
    assert len(table) == 2
    for row in table.rows:
        # Paper's takeaway: the full pipeline is the best of the three
        # variants on the hard datasets (allow a small tolerance — at
        # bench scale validation sets are small).
        full = row["automl_em"]
        assert full >= row["excl_dp"] - 3.0
        assert full >= row["excl_dp_fp"] - 3.0
        print(f"\n{row['dataset']}: full={full:.1f} "
              f"-DP={row['excl_dp']:.1f} -DP-FP={row['excl_dp_fp']:.1f}")
