"""Assemble EXPERIMENTS.md from the bench results and commentary.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/build_experiments_md.py

Each section pairs hand-written reproduction commentary (what the paper
reported, what to look for, where our analog deviates and why) with the
measured table from ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

HEADER = """\
# EXPERIMENTS — paper-reported vs measured

Every table and figure of the paper's evaluation (Section V), regenerated
by `pytest benchmarks/ --benchmark-only` on the synthetic benchmark
analogs (see DESIGN.md for the substitution table). **Absolute numbers
are not comparable to the paper** — the data is generated, the scales are
reduced (large datasets at 10-30% of Table III size) and search budgets
are counted in pipeline evaluations instead of wall-clock hours.  The
reproduction target is the *shape*: who wins, in which direction each
knob moves the result, and where the crossovers sit.  Tables below are
the exact files the benches wrote to `benchmarks/results/`.

Global calibration: the synthetic analogs were tuned so the Magellan
baseline lands near the paper's per-dataset F1
(Table IV column: 78.8 / 100 / 91.2 / 98.4 / 92.3 / 49.1 / 71.9 / 43.6);
measured Magellan values below stay within a few points of those anchors,
which is what makes the relative comparisons meaningful.
"""

SECTIONS: list[tuple[str, list[str], str]] = [
    ("Figure 3 — why parameter tuning matters (E1-E3)",
     ["fig3a", "fig3b", "fig3c"],
     """Paper: sweeping a single knob moves Abt-Buy F1 by ΔF1 = 10.08%
(random-forest `max_features`), 13.99% (number of selected features) and
1.17% (RobustScaler `q_min`).

Measured: the two model/selection knobs move F1 by several points at our
scale with the same ordering (feature selection > max_features >>
scaling).  **Reproduction finding** for Figure 3c: exact CART is provably
invariant to per-feature affine rescaling, so with a fixed forest seed
the `q_min` sweep is *exactly* flat (`f1_fixed_seed` column).  The
paper's small 1.17% is the same magnitude as plain run-to-run forest
variance, which the `f1_reseeded` column demonstrates — reproducing the
*size* of the reported effect and identifying its source."""),

    ("Table III — datasets (E4)",
     ["table3"],
     """The generated analogs match Table III's schemas, attribute counts
and positive totals; the small datasets are generated at full size (e.g.
Fodors-Zagats: 757 train / 189 test / 110 positives, exactly the paper's
row), the large ones at the `scale` shown."""),

    ("Table IV — Magellan vs AutoML-EM (E5, Finding 1)",
     ["table4"],
     """Paper: AutoML-EM beats the human-developed Magellan models on
every dataset, by +5.8 F1 on average (their summary row; the per-row ∆
column is internally inconsistent — see tests/test_experiments.py), with
the big gains on the hard product datasets (+17.3 Amazon-Google, +15.6
Abt-Buy).

Measured: the same shape — AutoML-EM wins on average, ties on the
saturated easy datasets (Fodors-Zagats, DBLP-ACM at 100), and posts its
largest gain exactly where the paper does (Amazon-Google).  Individual
cells are noisier than the paper's (our scaled test sets have tens of
positives, and we average only 2 generator seeds), so single-dataset
reversals of a few points occur where the paper reports small gaps."""),

    ("Figure 8 — AutoML-EM vs DeepMatcher (E6, Finding 2)",
     ["fig8"],
     """Paper: the non-deep AutoML-EM reaches or exceeds DeepMatcher on
structured data and stays competitive even on textual data (DeepMatcher
slightly ahead on Amazon-Google/Abt-Buy).

Measured: AutoML-EM is competitive-or-better across the board.
**Substitution limit**: DeepMatcherLite (hashed embeddings + soft word
alignment + numpy MLP) is a weaker stand-in than the real
RNN-with-pretrained-fastText DeepMatcher, and it underperforms most on
the long-text product datasets — so the corner of Figure 8 where the
paper's DeepMatcher *slightly wins* inverts here.  The headline claim
(Finding 2: non-deep matches deep) holds in amplified form."""),

    ("Figure 9 — feature-generation ablation (E7)",
     ["fig9"],
     """Paper: running the same AutoML on Table II features beats Table I
features on all 8 datasets (+0 to +11.1), and Table II is always wider.

Measured: Table II is wider on every dataset (column `*_nfeat`) and wins
on average; a couple of per-dataset cells flip sign within noise at our
scale.  The qualitative takeaway — let AutoML do feature selection
instead of pre-filtering by string length — is reproduced."""),

    ("Figure 10 — model-space study (E8)",
     ["fig10"],
     """Paper: the random-forest-only space converges faster at short
budgets; the all-model space catches up (and can pass) given hours.

Measured (budget = pipeline evaluations): the RF-only space dominates the
all-model space at every checkpoint on both hard datasets — the paper's
short-budget regime, which is exactly where our evaluation-count budgets
live.  The late all-model crossover needs far larger budgets than the
bench runs."""),

    ("Figure 12 — pipeline ablation (E9)",
     ["fig12"],
     """Paper: disabling the found pipeline's data preprocessing drops
validation F1 (63.7→60.1 Amazon-Google, 63.9→56.0 Abt-Buy); disabling
feature preprocessing on top drops it further but less dramatically.

Measured (averaged over 3 search seeds): the full pipeline is the best
variant on both hard datasets, with data preprocessing carrying most of
the difference — the paper's conclusion."""),

    ("Figure 13 — label-budget sweep (E10)",
     ["fig13"],
     """Paper: with init=500 and st_batch=200, AutoML-EM-Active beats
AC+AutoML-EM at every active-learning label budget (e.g. 56.5 vs 41.6 at
160 labels on Amazon-Google).

Measured (2 algorithm seeds per cell): the hybrid wins most cells and
wins on average, with the clearest margins at the smallest budgets —
where free machine labels matter most — matching the paper's direction.
Individual cells remain noisy at bench scale."""),

    ("Figure 14 — initial-size sweep (E11)",
     ["fig14"],
     """Paper: self-training helps when the initial model is decent
(init ≥ 100) and *hurts* at init = 30, where the weak model infers wrong
labels.

Measured: the same pattern — at init=30 the hybrid trails pure active
learning (wrong machine labels poison training), at init=500 it leads.
This is the paper's central caveat for AutoML-EM-Active, reproduced."""),

    ("Figure 15 — self-training batch size (E12)",
     ["fig15"],
     """Paper: more machine labels help with diminishing returns
(st_batch 0→20→50→200 raises F1, the last step least).

Measured: monotone-with-noise improvement from st_batch 0 to 200 on
Abt-Buy; Amazon-Google shows the same endpoint ordering with a noisy
middle.  Diminishing returns are visible in both."""),

    ("Extra ablations (DESIGN.md §5)",
     ["extra_search", "extra_concept_drift", "extra_blocking"],
     """Beyond the paper's figures: (a) the model-based searches (SMAC,
TPE) beat random search at equal budget, the premise of Section III-A;
(b) removing the α class-ratio guard from self-training (the paper's
Remark 2 concept-drift defence) costs several F1 points even though raw
machine-label accuracy stays high — drift, not label noise, is the
failure mode; (c) the blocking substrate shows the usual
reduction/recall trade-off the paper's Section II-A describes."""),

    ("Future-work features (DESIGN.md §6)",
     ["extra_query_strategies", "extra_ensemble", "extra_metalearning",
      "extra_labelers"],
     """The paper's conclusion names four future directions; all are
implemented and benched here: (a) alternative query strategies — every
informed strategy (uncertainty/margin/entropy/QBC) beats passive random
sampling; (b) auto-sklearn-style greedy ensemble selection adds test F1
over the single best pipeline on the hardest dataset; (c) meta-learning
warm starts seeded from other product datasets reach a good pipeline
within a very short budget; (d) transitivity and label-propagation
inference: label propagation infers hundreds of extra labels at ~100%
accuracy on the clean publication data, while transitivity infers none
on these benchmarks — each entity appears once per source, so the match
relation has no multi-edge clusters to close (it shines in single-table
dedup settings instead)."""),
]

FOOTER = """\
## Reproducing

```bash
python setup.py develop          # offline editable install
pytest tests/                    # the full unit/property/integration suite
pytest benchmarks/ --benchmark-only   # regenerate every table above
python benchmarks/build_experiments_md.py  # rebuild this file
```
"""


def main() -> None:
    parts = [HEADER]
    for title, names, commentary in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(commentary.strip() + "\n")
        for name in names:
            path = RESULTS / f"{name}.md"
            if path.exists():
                parts.append("\n" + path.read_text(encoding="utf-8").strip()
                             + "\n")
            else:
                parts.append(f"\n*(missing: run the bench that writes "
                             f"`benchmarks/results/{name}.md`)*\n")
    parts.append("\n" + FOOTER)
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
