"""Figure 3: the effect of tuning individual pipeline knobs (E1-E3)."""

from common import BENCH, run_once, save_table

from repro.experiments import f1_spread, run_fig3


def test_fig3_tuning_sweeps(benchmark):
    tables = run_once(benchmark, lambda: run_fig3("abt_buy", BENCH))
    for name, table in tables.items():
        save_table(table, name)
    # Paper's shape: max_features and feature-selection sweeps both move
    # F1 by several points (10.08% / 13.99%), the scaling sweep barely
    # (1.17%).  Our fixed-seed scaling column is provably flat.
    spread_a = f1_spread(tables["fig3a"])
    spread_b = f1_spread(tables["fig3b"])
    reseeded = tables["fig3c"].column("f1_reseeded")
    fixed = tables["fig3c"].column("f1_fixed_seed")
    spread_c = max(reseeded) - min(reseeded)
    assert spread_a > 2.0
    assert spread_b > 2.0
    # Bit-exact affine invariance of CART is the point of fig3c.
    assert max(fixed) - min(fixed) == 0.0  # repro-lint: disable=REP005
    assert spread_c < max(spread_a, spread_b) + 5.0
    print(f"\nΔF1: fig3a={spread_a:.2f} (paper 10.08) "
          f"fig3b={spread_b:.2f} (paper 13.99) "
          f"fig3c={spread_c:.2f} (paper 1.17)")
