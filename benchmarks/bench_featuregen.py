"""Feature-generation throughput bench: naive vs columnar vs parallel.

Builds a duplicate-heavy synthetic candidate set — blocking output
repeats records heavily, and the AutoML-EM-Active loop re-scores the
same pool every iteration, so unique value pairs are far fewer than
pairs — then times each execution path of
:meth:`repro.features.FeatureGenerator.transform` over a full Table II
plan and writes rows/sec to ``BENCH_featuregen.json`` at the repo root.

Usage::

    python benchmarks/bench_featuregen.py [--pairs 6000] [--n-jobs 4]
    python benchmarks/bench_featuregen.py --check   # exit 1 if columnar
                                                    # is slower than naive

The ``--check`` mode also runs as an opt-in pytest marker:
``pytest benchmarks/test_bench_featuregen.py --perf``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.data.pairs import PairSet, RecordPair  # noqa: E402
from repro.data.table import Table  # noqa: E402
from repro.features import FeatureGenerator, autoem_feature_plan  # noqa: E402
from repro.features.types import DataType  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_featuregen.json"

#: Schema of the synthetic workload: the mix Table II must cover.
TYPES = {
    "name": DataType.WORDS_1_5,
    "brand": DataType.SINGLE_WORD,
    "description": DataType.LONG_TEXT,
    "price": DataType.NUMERIC,
    "in_stock": DataType.BOOLEAN,
}

_WORDS = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
          "hotel", "india", "juliett", "kilo", "lima", "mike", "november",
          "oscar", "papa", "quebec", "romeo", "sierra", "tango")


def _record_rows(n_records: int, rng: np.random.Generator) -> list[list]:
    rows = []
    for _ in range(n_records):
        name = " ".join(rng.choice(_WORDS, size=rng.integers(2, 5)))
        brand = str(rng.choice(_WORDS))
        description = " ".join(rng.choice(_WORDS, size=rng.integers(8, 16)))
        price = (None if rng.random() < 0.1
                 else float(np.round(rng.uniform(1, 500), 2)))
        in_stock = None if rng.random() < 0.1 else bool(rng.random() < 0.5)
        rows.append([name, brand, description, price, in_stock])
    return rows


def build_workload(n_pairs: int = 6000, duplication: int = 4,
                   seed: int = 0) -> PairSet:
    """A candidate set where each distinct record combo repeats
    ``duplication`` times (the blocking-output / AL-pool regime)."""
    rng = np.random.default_rng(seed)
    n_unique = max(1, n_pairs // duplication)
    n_records = max(20, n_unique // 8)
    columns = list(TYPES)
    table_a = Table("bench_a", columns, _record_rows(n_records, rng))
    table_b = Table("bench_b", columns, _record_rows(n_records, rng))
    combos = [(int(rng.integers(n_records)), int(rng.integers(n_records)))
              for _ in range(n_unique)]
    pairs = [RecordPair(table_a[i], table_b[j])
             for i, j in combos for _ in range(duplication)]
    rng.shuffle(pairs)
    return PairSet(table_a, table_b, pairs[:n_pairs])


def _timed(func) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def run_bench(n_pairs: int = 6000, duplication: int = 4,
              n_jobs: int | None = None, seed: int = 0) -> dict:
    """Time every execution path on one workload; return the report."""
    if n_jobs is None:
        # At least 2 so the pool path is genuinely exercised even on a
        # single-core box (where it measures pure pool overhead).
        n_jobs = max(2, min(4, os.cpu_count() or 1))
    pairs = build_workload(n_pairs=n_pairs, duplication=duplication,
                           seed=seed)
    plan = autoem_feature_plan(TYPES)

    naive_seconds, reference = _timed(
        lambda: FeatureGenerator(plan, engine="naive").transform(pairs))

    columnar_seconds, columnar = _timed(
        lambda: FeatureGenerator(plan).transform(pairs))

    cached_generator = FeatureGenerator(plan, cache=True)
    cached_generator.transform(pairs)  # populate
    cached_seconds, cached = _timed(
        lambda: cached_generator.transform(pairs))

    parallel_seconds, parallel = _timed(
        lambda: FeatureGenerator(plan, n_jobs=n_jobs,
                                 parallel_threshold=0).transform(pairs))

    for name, matrix in (("columnar", columnar), ("cached", cached),
                         ("parallel", parallel)):
        np.testing.assert_array_equal(matrix, reference,
                                      err_msg=f"{name} path diverged")

    def path(seconds: float, **extra) -> dict:
        return {"seconds": round(seconds, 6),
                "rows_per_sec": round(len(pairs) / max(seconds, 1e-9), 1),
                **extra}

    return {
        "workload": {
            "n_pairs": len(pairs),
            "n_unique_combos": max(1, n_pairs // duplication),
            "duplication": duplication,
            "n_features": len(plan),
            "seed": seed,
        },
        "paths": {
            "naive": path(naive_seconds),
            "columnar": path(columnar_seconds),
            "columnar_cached": path(cached_seconds),
            "parallel": path(parallel_seconds, n_jobs=n_jobs),
        },
        "speedup_columnar_vs_naive": round(
            naive_seconds / max(columnar_seconds, 1e-9), 2),
        "speedup_cached_vs_naive": round(
            naive_seconds / max(cached_seconds, 1e-9), 2),
        "speedup_parallel_vs_naive": round(
            naive_seconds / max(parallel_seconds, 1e-9), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=6000,
                        help="candidate-set size (default 6000)")
    parser.add_argument("--duplication", type=int, default=4,
                        help="repeats per distinct record combo")
    parser.add_argument("--n-jobs", type=int, default=None,
                        help="workers for the parallel path "
                             "(default min(4, cores))")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"report path (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the columnar path beats naive")
    args = parser.parse_args(argv)

    report = run_bench(n_pairs=args.pairs, duplication=args.duplication,
                       n_jobs=args.n_jobs, seed=args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")

    if args.check and report["speedup_columnar_vs_naive"] < 1.0:
        print("CHECK FAILED: columnar path is slower than the naive loop",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
