"""Opt-in perf regression check for the indexed blockers.

Skipped unless pytest is invoked with ``--perf`` (see conftest) so the
tier-1 suite stays fast:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_blocking.py --perf
"""

import json

import pytest

from bench_blocking import check_report, run_bench

pytestmark = pytest.mark.perf


def test_full_scale_gates_hold(tmp_path):
    report = run_bench(n_records=2000, seed=0, naive_slice=300)
    (tmp_path / "bench_blocking.json").write_text(
        json.dumps(report, indent=2), encoding="utf-8")
    assert check_report(report) == 0, report["blockers"]
    for result in report["blockers"].values():
        assert result["pair_completeness"] >= 0.98
        assert result["reduction_ratio"] >= 0.95
        assert result["speedup_vs_naive"] >= 10.0
