"""Opt-in perf regression check for incremental entity resolution.

Skipped unless pytest is invoked with ``--perf`` (see conftest) so the
tier-1 suite stays fast:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_resolve.py --perf
"""

import json

import pytest

from bench_resolve import FULL_SCALE, check_report, run_bench

pytestmark = pytest.mark.perf


def test_full_scale_gates_hold(tmp_path):
    report = run_bench(n_decisions=FULL_SCALE, seed=0, batch_size=500)
    (tmp_path / "bench_resolve.json").write_text(
        json.dumps(report, indent=2), encoding="utf-8")
    assert check_report(report) == 0, report
    assert report["parity"]
    assert report["quality"]["pairwise_f1"] >= 0.99
    assert report["speedup_vs_recluster"] >= 10.0
