"""Figure 10: random-forest-only vs all-model search space (E8)."""

from common import BENCH, run_once, save_table

from repro.experiments import run_fig10

BUDGETS = (4, 8, 16, 30)


def test_fig10_model_space_convergence(benchmark):
    table = run_once(
        benchmark,
        lambda: run_fig10(BENCH, datasets=("amazon_google", "abt_buy"),
                          budgets=BUDGETS))
    save_table(table, "fig10")
    assert len(table) == 2 * 2 * len(BUDGETS)

    def curve(dataset, space):
        return [row["valid_f1"] for row in table.rows
                if row["dataset"] == dataset and row["space"] == space]

    for dataset in ("amazon_google", "abt_buy"):
        rf = curve(dataset, "random-forest")
        allm = curve(dataset, "all-model")
        # Incumbent validation curves are monotone in the budget.
        assert all(b >= a - 1e-9 for a, b in zip(rf, rf[1:]))
        assert all(b >= a - 1e-9 for a, b in zip(allm, allm[1:]))
        # Paper's takeaway: at SHORT budgets the shrunk space is at least
        # competitive (it converges faster); the all-model space may catch
        # up late thanks to its larger search space.
        assert rf[0] >= allm[0] - 6.0
        print(f"\n{dataset}: rf-only {rf} vs all-model {allm}")
