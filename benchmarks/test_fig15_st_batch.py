"""Figure 15: effect of the self-training batch size (E12)."""

from common import ACTIVE_BENCH as BENCH, run_once, save_table

from repro.experiments import run_fig15


def test_fig15_st_batch_sweep(benchmark):
    table = run_once(
        benchmark,
        lambda: run_fig15(BENCH, st_batches=(0, 20, 50, 200),
                          init_size=500, ac_batch=4, n_iterations=10))
    save_table(table, "fig15")
    assert len(table) == 8

    per_dataset = {}
    for dataset in ("amazon_google", "abt_buy"):
        scores = {row["st_batch"]: row["test_f1"] for row in table.rows
                  if row["dataset"] == dataset}
        per_dataset[dataset] = scores
        # Paper's takeaway: more machine labels help with diminishing
        # returns.  Per-dataset cells are noisy at bench scale, so each
        # dataset only needs to be in the same league ...
        assert scores[200] >= scores[0] - 5.0
        print(f"\n{dataset}: " + " ".join(
            f"st={k}:{v:.1f}" for k, v in sorted(scores.items())))
    # ... while the cross-dataset average must show the actual benefit.
    mean_st0 = sum(s[0] for s in per_dataset.values()) / len(per_dataset)
    mean_st200 = sum(s[200] for s in per_dataset.values()) / len(per_dataset)
    assert mean_st200 >= mean_st0 - 1.0
