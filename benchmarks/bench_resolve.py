"""Entity-resolution throughput bench: incremental vs full re-cluster.

Builds a synthetic decision stream — ``N`` scored pairwise decisions
over a universe of 4-record entities (three positive spanning edges and
one cross-entity negative per entity, shuffled) — then measures the two
ways a serving path can keep entity ids current:

* **incremental** — one standing :class:`~repro.resolve.EntityStore`
  folding the stream in batch by batch (the resolver-tap path behind
  :class:`~repro.serve.matcher.StreamMatcher`); amortized near-O(1)
  per decision;
* **full re-cluster** — rebuilding the clustering from scratch over
  all decisions seen so far, once per batch.  One from-scratch pass is
  timed and the re-cluster-every-batch total is extrapolated (honestly
  labeled: per-pass cost is linear in decisions seen, so the total is
  quadratic in batch count).

Parity comes before speed: the incremental store's final partition —
including the correlation-clustering refined view — must be
bit-identical to the one-shot batch re-cluster, and both fingerprints
must agree.  Results go to ``BENCH_resolve.json`` at the repo root.

Usage::

    python benchmarks/bench_resolve.py [--decisions 50000]
    python benchmarks/bench_resolve.py --check   # exit 1 unless the
                                                 # parity/quality gates hold

``--check`` enforces incremental==batch parity, fingerprint equality
and cluster pairwise F1 >= 0.99 against the workload's gold pairs at
any scale, plus a 10x incremental-vs-recluster speedup at full scale
(>= 20000 decisions; smaller runs only require parity, so the smoke
test stays cheap — see ``tests/test_bench_resolve_smoke.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.resolve import (  # noqa: E402
    ConnectedComponents,
    CorrelationClustering,
    EntityStore,
    MatchDecision,
    evaluate_clustering,
    node_key,
)

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_resolve.json"

#: Decision count at which the 10x speedup gate applies; below it the
#: per-batch overheads dominate and only parity is enforced.
FULL_SCALE = 20000

#: Decisions emitted per synthetic entity (see build_decisions).
_PER_ENTITY = 4


def build_decisions(n_decisions: int, seed: int = 0
                    ) -> tuple[list[MatchDecision], set[tuple[int, int]]]:
    """A shuffled decision stream with known gold clusters.

    Entity ``i`` owns records ``a:2i, a:2i+1, b:2i, b:2i+1``; three
    positive edges span it (a perfect matcher run through blocking
    would produce exactly these) and one low-scoring negative points at
    the next entity (the hard non-match a real matcher also scores).
    Gold pairs are every cross-side pair inside one entity.
    """
    rng = np.random.default_rng(seed)
    n_entities = max(1, n_decisions // _PER_ENTITY)
    decisions: list[MatchDecision] = []
    gold: set[tuple[int, int]] = set()
    for i in range(n_entities):
        a0, a1 = 2 * i, 2 * i + 1
        b0, b1 = 2 * i, 2 * i + 1
        gold.update({(a0, b0), (a0, b1), (a1, b0), (a1, b1)})
        jitter = rng.random(4)
        decisions.append(MatchDecision(
            node_key("a", a0), node_key("b", b0),
            0.90 + 0.08 * jitter[0], True))
        decisions.append(MatchDecision(
            node_key("a", a1), node_key("b", b0),
            0.80 + 0.08 * jitter[1], True))
        decisions.append(MatchDecision(
            node_key("a", a0), node_key("b", b1),
            0.70 + 0.08 * jitter[2], True))
        decisions.append(MatchDecision(
            node_key("a", a0), node_key("b", (2 * ((i + 1) % n_entities))),
            0.10 * jitter[3], False))
    order = rng.permutation(len(decisions))
    return [decisions[int(i)] for i in order], gold


def _make_store() -> EntityStore:
    return EntityStore(refiner=CorrelationClustering(seed=0))


def _time_incremental(decisions: list[MatchDecision],
                      batch_size: int) -> tuple[EntityStore, dict]:
    """One standing store folding the stream in, batch by batch."""
    store = _make_store()
    start = time.perf_counter()
    n_batches = 0
    for low in range(0, len(decisions), batch_size):
        store.apply(decisions[low:low + batch_size])
        n_batches += 1
    apply_seconds = time.perf_counter() - start
    start = time.perf_counter()
    entities = store.entities()
    view_seconds = time.perf_counter() - start
    return store, {
        "n_batches": n_batches,
        "apply_seconds": round(apply_seconds, 6),
        "entities_view_seconds": round(view_seconds, 6),
        "total_seconds": round(apply_seconds + view_seconds, 6),
        "n_entities": len(entities),
    }


def _time_full_recluster(decisions: list[MatchDecision],
                         n_batches: int) -> tuple[EntityStore, dict]:
    """Time one from-scratch pass; extrapolate re-clustering per batch.

    Re-clustering after batch ``j`` costs ~``j/B`` of a full pass
    (union–find is linear in edges), so doing it after every one of
    ``B`` batches costs ~``(B + 1) / 2`` full passes.
    """
    start = time.perf_counter()
    store = _make_store()
    store.apply(decisions)
    entities = store.entities()
    full_pass_seconds = time.perf_counter() - start
    scale = (n_batches + 1) / 2
    return store, {
        "full_pass_seconds": round(full_pass_seconds, 6),
        "extrapolated": n_batches > 1,
        "extrapolated_seconds": round(full_pass_seconds * scale, 6),
        "n_entities": len(entities),
    }


def run_bench(n_decisions: int = 50000, seed: int = 0,
              batch_size: int = 500) -> dict:
    decisions, gold = build_decisions(n_decisions, seed=seed)
    incremental_store, incremental = _time_incremental(decisions,
                                                       batch_size)
    batch_store, recluster = _time_full_recluster(
        decisions, incremental["n_batches"])

    incremental_entities = incremental_store.entities()
    parity = (incremental_entities == batch_store.entities()
              and incremental_store.fingerprint
              == batch_store.fingerprint)

    components = {members[0]: members
                  for members in incremental_entities.values()}
    report = evaluate_clustering(components, gold)

    # sanity: the bare union-find partition has the same granularity
    # (this workload has no internal negatives, so refinement is a
    # no-op and store entities == raw connected components)
    bare = ConnectedComponents()
    bare.add_many(decisions)
    raw_matches = bare.n_components == len(incremental_entities)

    return {
        "workload": {
            "n_decisions": len(decisions),
            "n_gold_pairs": len(gold),
            "batch_size": batch_size,
            "seed": seed,
        },
        "incremental": incremental,
        "full_recluster": recluster,
        "speedup_vs_recluster": round(
            recluster["extrapolated_seconds"]
            / max(incremental["total_seconds"], 1e-9), 2),
        "parity": parity,
        "raw_component_sanity": raw_matches,
        "quality": report.to_dict(),
    }


def check_report(report: dict, out=sys.stderr) -> int:
    """The ``--check`` gates; returns a process exit code."""
    failures = []
    if not report["parity"]:
        failures.append("incremental partition diverges from the "
                        "one-shot batch re-cluster")
    f1 = report["quality"]["pairwise_f1"]
    if f1 < 0.99:
        failures.append(f"cluster pairwise F1 {f1} < 0.99")
    full_scale = report["workload"]["n_decisions"] >= FULL_SCALE
    if full_scale and report["speedup_vs_recluster"] < 10.0:
        failures.append(f"incremental speedup "
                        f"{report['speedup_vs_recluster']}x < 10x")
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=out)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--decisions", type=int, default=50000,
                        help="decision-stream length (default 50000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch", type=int, default=500,
                        help="decisions per incremental batch "
                             "(default 500)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"report path (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the parity/quality gates hold")
    args = parser.parse_args(argv)

    report = run_bench(n_decisions=args.decisions, seed=args.seed,
                       batch_size=args.batch)
    args.output.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    if args.check:
        return check_report(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
